// Switch-restart recovery protocol tests: epoch stamping and resync, the
// sync-query/rescue path that untangles a restart racing a lost result
// packet, the capped backoff in fixed-RTO mode, dead-switch declaration and
// the graceful degradation to the streaming-PS fallback collective, plus the
// named FaultPlan validation messages and a seeded randomized fault-schedule
// property test (restart x burst x flap x kill).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/tracing.hpp"
#include "core/cluster.hpp"
#include "core/fault.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"

namespace switchml {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::HierarchicalCluster;
using core::HierarchyConfig;

std::vector<std::vector<std::int32_t>> make_updates(int n, std::size_t d) {
  std::vector<std::vector<std::int32_t>> updates(static_cast<std::size_t>(n),
                                                 std::vector<std::int32_t>(d));
  for (int w = 0; w < n; ++w)
    for (std::size_t i = 0; i < d; ++i)
      updates[static_cast<std::size_t>(w)][i] = static_cast<std::int32_t>(i % 97) + w;
  return updates;
}

std::vector<std::int32_t> expected_sum(int n, std::size_t d) {
  std::vector<std::int32_t> expect(d);
  for (std::size_t i = 0; i < d; ++i)
    expect[i] =
        static_cast<std::int32_t>(n) * static_cast<std::int32_t>(i % 97) + n * (n - 1) / 2;
  return expect;
}

Time clean_data_tat(ClusterConfig cfg, const std::vector<std::vector<std::int32_t>>& updates) {
  Cluster clean(cfg);
  const auto r = clean.reduce_i32(updates);
  return *std::max_element(r.tat.begin(), r.tat.end());
}

// ---- epoch stamping ---------------------------------------------------------

TEST(Recovery, EpochAdvancesOnRestartAndWorkersResync) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.pool_size = 8;
  const std::size_t d = 4096;
  const auto updates = make_updates(4, d);
  const Time clean_max = clean_data_tat(cfg, updates);

  // Two restarts: the epoch is a monotonic incarnation, not a flag.
  cfg.faults.switch_restarts.push_back({0, clean_max / 3});
  cfg.faults.switch_restarts.push_back({0, 2 * clean_max / 3});
  Cluster cluster(cfg);
  const auto result = cluster.reduce_i32(updates);

  EXPECT_EQ(cluster.agg_switch().epoch(), 2u);
  const auto expect = expected_sum(4, d);
  std::uint64_t resyncs = 0;
  for (int w = 0; w < 4; ++w) {
    ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect) << w;
    // Every worker ends the run on the switch's final incarnation.
    EXPECT_EQ(cluster.worker(w).switch_epoch(), 2u) << w;
    resyncs += cluster.worker(w).recovery().epoch_resyncs;
  }
  EXPECT_GE(resyncs, 1u);
}

// ---- the stranding race: restart vs. a concurrently lost result ------------

// The race the old ordering rule ("restarts must precede loss windows")
// existed to dodge: worker 0 loses a result multicast, the switch restarts
// before worker 0's RTO fires, and the wiped shadow copy can no longer
// answer the retransmission. Worker 0 re-claims the slot at the OLD version
// while the ahead worker re-claims the NEXT phase at the alternate version —
// neither alone can complete either slot. The sync-query/rescue escalation
// must converge this bit-exactly.
TEST(Recovery, RestartRacingLostResultConvergesBitExact) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 2);
  cfg.pool_size = 1; // serialize phases so the stranded pattern is deterministic
  cfg.sync_after = 3;
  cfg.dead_after = 0; // the race MUST be recoverable without the fallback
  const std::size_t d = 1024;
  const auto updates = make_updates(2, d);
  const Time clean_max = clean_data_tat(cfg, updates);
  ASSERT_GT(clean_max, usec(10));

  const Time window_start = clean_max / 2;
  const Time window_end = window_start + usec(500);
  // The restart lands after the first in-window result loss (phase cadence
  // is microseconds) but well before worker 0's 1 ms RTO would have been
  // answered from the shadow copy.
  cfg.faults.switch_restarts.push_back({0, window_start + usec(100)});

  trace::TraceSink sink(1u << 18, trace::kCatFault);
  trace::TraceSink::Scope scope(&sink);
  Cluster cluster(cfg);
  const net::Node* sw = &cluster.agg_switch();
  sim::Simulation& sim = cluster.simulation();
  // Drop every result the switch sends to worker 0 inside the window.
  cluster.link(0).set_drop_filter(
      [sw, &sim, window_start, window_end](const net::Node& sender, const net::Packet& p) {
        return &sender == sw && p.kind == net::PacketKind::SmlResult &&
               sim.now() >= window_start && sim.now() < window_end;
      });

  const auto result = cluster.reduce_i32(updates);
  const auto expect = expected_sum(2, d);
  for (int w = 0; w < 2; ++w)
    ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect) << w;

  // The run must have gone through the escalation, not around it: the ahead
  // worker re-contributed the completed phase via a rescue.
  EXPECT_GE(cluster.agg_switch().counters().rescues_applied, 1u);
  EXPECT_GE(cluster.worker(1).recovery().rescues_sent, 1u);
  EXPECT_GE(cluster.worker(1).recovery().sync_responses, 1u);
  EXPECT_EQ(cluster.worker(0).switch_epoch(), 1u);
  EXPECT_EQ(cluster.worker(1).switch_epoch(), 1u);
  EXPECT_FALSE(cluster.fabric().fallback_engaged());

  int rescue_applies = 0;
  for (const trace::Event& e : sink.events())
    rescue_applies += std::string(e.name) == "rescue_apply";
  EXPECT_GE(rescue_applies, 1);
}

// ---- fixed-RTO backoff (regression for the uncapped-retry bug) -------------

// Before the fix, per-slot exponential backoff only engaged in adaptive-RTO
// mode: a fixed-RTO worker facing a dead switch retransmitted every rto
// forever. With the backoff applied in both modes, the dead_after budget is
// spent over a geometrically growing schedule — the switch_dead declaration
// lands near sum(min(rto << i, rto_max)) rather than dead_after * rto.
TEST(Recovery, FixedRtoBacksOffExponentiallyBeforeDeadDeclaration) {
  trace::TraceSink sink(1u << 18, trace::kCatFault);
  trace::TraceSink::Scope scope(&sink);

  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 2);
  cfg.timing_only = true;
  cfg.pool_size = 4;
  cfg.adaptive_rto = false;
  cfg.retransmit_timeout = msec(1);
  cfg.sync_after = 0;
  cfg.dead_after = 8;
  cfg.faults.switch_kills.push_back({0, 0});
  Cluster cluster(cfg);
  const auto tat = cluster.reduce_timing(16 * 1024);

  // 8 consecutive timeouts with doubling: 1+2+4+...+128 = 255 ms, versus
  // 8 ms if the backoff were (still) skipped in fixed-RTO mode.
  Time dead_ts = -1;
  for (const trace::Event& e : sink.events())
    if (std::string(e.name) == "switch_dead" && dead_ts < 0) dead_ts = e.ts;
  ASSERT_GE(dead_ts, 0);
  EXPECT_GT(dead_ts, msec(100));
  EXPECT_LT(dead_ts, msec(400));

  // The job still terminates — through the fallback, with honest inflation.
  EXPECT_TRUE(cluster.fabric().fallback_engaged());
  for (const Time t : tat) EXPECT_GT(t, dead_ts);
}

// ---- graceful degradation to the streaming-PS fallback ---------------------

TEST(Recovery, SwitchKillDegradesToFallbackBitExact) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.pool_size = 8;
  cfg.sync_after = 2;
  cfg.dead_after = 6;
  const std::size_t d = 4096;
  const auto updates = make_updates(4, d);
  const Time clean_max = clean_data_tat(cfg, updates);

  cfg.faults.switch_kills.push_back({0, clean_max / 2});
  trace::TraceSink sink(1u << 18, trace::kCatFault);
  trace::TraceSink::Scope scope(&sink);
  Cluster cluster(cfg);
  const auto result = cluster.reduce_i32(updates);

  // The fallback replays the unconsumed chunks over int32 sums, so the
  // degraded run is still bit-exact — it just takes honestly longer.
  const auto expect = expected_sum(4, d);
  for (int w = 0; w < 4; ++w)
    ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect) << w;
  EXPECT_TRUE(cluster.fabric().fallback_engaged());
  EXPECT_GT(cluster.agg_switch().counters().dead_drops, 0u);
  const Time faulty_max = *std::max_element(result.tat.begin(), result.tat.end());
  EXPECT_GT(faulty_max, clean_max + cfg.fallback_reprovision);

  std::uint64_t dead = 0;
  for (int w = 0; w < 4; ++w) dead += cluster.worker(w).recovery().dead_declared;
  EXPECT_GE(dead, 1u);
  int dead_events = 0, fallback_begins = 0, kills = 0;
  for (const trace::Event& e : sink.events()) {
    const std::string name = e.name;
    dead_events += name == "switch_dead";
    fallback_begins += name == "fallback_begin";
    kills += name == "switch_kill";
  }
  EXPECT_EQ(kills, 1);
  EXPECT_GE(dead_events, 1);
  EXPECT_EQ(fallback_begins, 1);
}

// A root kill strands every rack: leaves stay healthy (they even answer
// sync queries), but no slot can ever complete, so the dead_after budget is
// the only way out. The hierarchy degrades to the fallback like the rack.
TEST(Recovery, HierarchyRootKillDegradesToFallbackBitExact) {
  HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 2;
  cfg.pool_size = 16;
  cfg.sync_after = 2;
  cfg.dead_after = 6;
  const std::size_t d = 4096;
  const auto updates = make_updates(4, d);

  HierarchicalCluster clean(cfg);
  const auto clean_result = clean.reduce_i32(updates);
  const Time clean_max = *std::max_element(clean_result.tat.begin(), clean_result.tat.end());

  cfg.faults.switch_kills.push_back({0, clean_max / 2});
  HierarchicalCluster cluster(cfg);
  const auto result = cluster.reduce_i32(updates);

  const auto expect = expected_sum(4, d);
  for (int w = 0; w < 4; ++w)
    ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect) << w;
  EXPECT_TRUE(cluster.fabric().fallback_engaged());
  EXPECT_GT(cluster.root().counters().dead_drops, 0u);
}

// ---- FaultPlan validation names the offending spec -------------------------

TEST(Recovery, ValidationNamesOffendingSpecKindIndexAndTime) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 2);
  cfg.faults.switch_kills.push_back({0, usec(10)});
  cfg.faults.switch_kills.push_back({7, usec(20)}); // no switch 7 on a rack
  try {
    Cluster cluster(cfg);
    FAIL() << "out-of-range switch_kills spec must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("switch_kills[1]"), std::string::npos) << what;
    EXPECT_NE(what.find("t=20000"), std::string::npos) << what;
  }

  ClusterConfig cfg2 = ClusterConfig::for_rate(gbps(10), 2);
  cfg2.faults.switch_restarts.push_back({3, usec(5)});
  try {
    Cluster cluster(cfg2);
    FAIL() << "out-of-range switch_restarts spec must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("switch_restarts[0]"), std::string::npos) << e.what();
  }
}

TEST(Recovery, LosslessRejectionExplainsWhyPerFaultClass) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 2);
  cfg.lossless = true;
  cfg.faults.switch_kills.push_back({0, usec(10)});
  try {
    Cluster cluster(cfg);
    FAIL() << "kills must be rejected in lossless mode";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lossless"), std::string::npos) << what;
    EXPECT_NE(what.find("kill"), std::string::npos) << what;
  }

  ClusterConfig cfg2 = ClusterConfig::for_rate(gbps(10), 2);
  cfg2.lossless = true;
  cfg2.faults.switch_restarts.push_back({0, usec(10)});
  try {
    Cluster cluster(cfg2);
    FAIL() << "restarts must be rejected in lossless mode";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lossless"), std::string::npos) << what;
    EXPECT_NE(what.find("restart"), std::string::npos) << what;
  }
}

// ---- randomized fault-schedule property test -------------------------------

// Seeded sweep over random (restart x Gilbert-Elliott burst x flap x kill)
// schedules: every run must terminate, and must either converge bit-exactly
// on the switch path or degrade EXPLICITLY to the fallback (which is itself
// bit-exact over int32 sums). SWITCHML_SOAK_ITERS scales the iteration count
// for the CI soak job.
TEST(Recovery, RandomizedFaultSchedulesTerminateBitExactOrFallback) {
  const char* env = std::getenv("SWITCHML_SOAK_ITERS");
  const int iters = env ? std::max(1, std::atoi(env)) : 6;
  int fallbacks_seen = 0;

  for (int iter = 0; iter < iters; ++iter) {
    std::mt19937_64 rng(0xC0FFEEull + static_cast<std::uint64_t>(iter));
    const int n = 2 + static_cast<int>(rng() % 3);
    ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), n);
    const std::uint32_t pools[] = {1, 2, 8};
    cfg.pool_size = pools[rng() % 3];
    cfg.seed = rng();
    cfg.sync_after = 2;
    cfg.dead_after = 12;
    const std::size_t d = 2048;
    const auto updates = make_updates(n, d);
    const Time clean_max = clean_data_tat(cfg, updates);

    auto uniform_time = [&](Time lo, Time hi) {
      return lo + static_cast<Time>(rng() % static_cast<std::uint64_t>(hi - lo));
    };
    cfg.faults.switch_restarts.push_back({0, uniform_time(0, clean_max)});
    if (rng() % 2) {
      net::BurstLossConfig ge;
      ge.p_enter = 0.05;
      ge.p_exit = 0.2;
      ge.loss_bad = 0.8;
      cfg.faults.bursts.push_back({static_cast<int>(rng() % static_cast<std::uint64_t>(n)), ge});
    }
    if (rng() % 2) {
      const Time down = uniform_time(0, clean_max / 2);
      cfg.faults.flaps.push_back(
          {static_cast<std::size_t>(rng() % static_cast<std::uint64_t>(n)), down,
           down + clean_max / 4 + 1});
    }
    // A kill before 0.6 * clean_max always precedes completion (faults only
    // slow the run down), so the fallback MUST engage on these schedules.
    const bool killed = rng() % 3 == 0;
    if (killed) cfg.faults.switch_kills.push_back({0, uniform_time(clean_max / 5, clean_max / 2)});

    Cluster cluster(cfg);
    const auto result = cluster.reduce_i32(updates);
    const auto expect = expected_sum(n, d);
    for (int w = 0; w < n; ++w)
      ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect)
          << "iter=" << iter << " worker=" << w << " killed=" << killed;
    // A killed switch MUST degrade to the fallback. The converse is not
    // required: an extreme burst schedule can keep one worker's link in the
    // bad state across the whole dead_after budget, and a worker that
    // cannot reach the switch for that long is ALLOWED to declare it dead —
    // the explicit fallback is the honest (and still bit-exact) outcome.
    if (killed) {
      EXPECT_TRUE(cluster.fabric().fallback_engaged()) << "iter=" << iter;
    }
    fallbacks_seen += cluster.fabric().fallback_engaged();
  }
  if (iters >= 6) {
    EXPECT_GE(fallbacks_seen, 1);
  }
}

} // namespace
} // namespace switchml
