// UDP-vs-RDMA transport crossover: where does the RDMA-UC channel model pull
// ahead of the DPDK/UDP datapath, and by how much?
//
// Sweeps link rate {10, 100} Gbps x message size {180 B UDP, MTU UDP,
// 4 KB RDMA messages} on the rack fabric (8 workers). The UDP arms use
// core::crossover_udp_nic, which adds the explicit per-byte packetization/
// copy cost the calibrated per-packet anchors fold away — the term that turns
// the UDP datapath CPU-bound once packets grow toward the MTU at 100 Gbps.
// The RDMA-UC arms post one WQE per 1024-element message and let the NIC DMA
// and segment it with zero per-byte CPU, so they stay wire-bound.
//
// Shape to reproduce: at 10 Gbps both transports saturate the link (ratio
// ~1x — the wire is the bottleneck, transport choice is immaterial); at
// 100 Gbps with large messages RDMA-UC sustains >= 2x the UDP goodput. The
// 100G ratio is a guarded metric AND a hard assertion: the bench exits
// non-zero if the crossover disappears.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

// measure_switchml with the transport seam exposed: selects the channel kind
// and (for the UDP arms) the crossover NIC profile with explicit per-byte
// datapath cost.
RateResult measure_transport(BitsPerSecond rate, int workers, const BenchScale& scale,
                             net::TransportKind transport, std::uint32_t elems_per_packet,
                             bool udp_per_byte_nic, MetricsSidecar* sidecar,
                             const std::string& label, const TimelineRequest* timeline) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, workers);
  cfg.timing_only = true;
  cfg.transport = transport;
  if (udp_per_byte_nic) cfg.nic = core::crossover_udp_nic(rate);
  if (elems_per_packet != net::kDefaultElemsPerPacket) {
    cfg.elems_per_packet = elems_per_packet;
    cfg.mtu_emulation = true; // switch aggregates the first 32, forwards the rest
  }
  core::Cluster cluster(cfg);
  ScopedTimeline scoped(timeline, cluster.simulation(), cluster.metrics(), label);

  Summary tat_ms;
  for (int r = 0; r < scale.repetitions; ++r) {
    auto tats = cluster.reduce_timing(scale.tensor_elems);
    for (Time t : tats) tat_ms.add(to_msec(t));
  }
  scoped.finish_and_write();
  RateResult out;
  out.tat_ms = tat_ms.median();
  out.ate_per_s = static_cast<double>(scale.tensor_elems) / (out.tat_ms / 1e3);
  fill_tail_stats(out, cluster.metrics());
  if (sidecar != nullptr) sidecar->record(label, cluster.metrics());
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const int workers = 8;
  const BenchScale scale = BenchScale::from_args(argc, argv);

  MetricsSidecar sidecar("transport_crossover_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("transport_crossover", argc, argv);

  std::printf("=== Transport crossover: UDP datapath vs RDMA-UC (8 workers) ===\n");
  std::printf("(UDP arms carry the explicit %.2f ns/B packetization cost; RDMA messages\n"
              " are %u elements, segmented by the NIC at %u-byte path MTU)\n\n",
              0.35, net::kRdmaElemsPerMessage, net::kRdmaMtuBytes);
  Table table({"rate", "UDP-180B [MATE/s]", "UDP-MTU [MATE/s]", "RDMA-UC [MATE/s]",
               "RDMA/UDP-MTU"});

  double ratio_10g = 0.0, ratio_100g = 0.0;
  for (const BitsPerSecond rate : {gbps(10), gbps(100)}) {
    const bool is_100g = rate >= gbps(100);
    const std::string tag = is_100g ? "100g." : "10g.";
    const auto udp_small =
        measure_transport(rate, workers, scale, net::TransportKind::kUdp,
                          net::kDefaultElemsPerPacket, /*udp_per_byte_nic=*/true, &sidecar,
                          tag + "udp-180", &timeline_req);
    const auto udp_mtu =
        measure_transport(rate, workers, scale, net::TransportKind::kUdp,
                          net::kMtuElemsPerPacket, /*udp_per_byte_nic=*/true, &sidecar,
                          tag + "udp-mtu", &timeline_req);
    const auto rdma =
        measure_transport(rate, workers, scale, net::TransportKind::kRdmaUc,
                          net::kRdmaElemsPerMessage, /*udp_per_byte_nic=*/false, &sidecar,
                          tag + "rdma-uc", &timeline_req);

    report.add(tag + "udp-180.tat_ms", udp_small.tat_ms);
    report.add(tag + "udp-mtu.tat_ms", udp_mtu.tat_ms);
    report.add(tag + "rdma-uc.tat_ms", rdma.tat_ms);
    const double ratio = rdma.ate_per_s / udp_mtu.ate_per_s;
    report.add(tag + "rdma_over_udp_mtu", ratio);
    (is_100g ? ratio_100g : ratio_10g) = ratio;

    table.add_row({std::to_string(rate / gbps(1)) + " Gbps", mega(udp_small.ate_per_s),
                   mega(udp_mtu.ate_per_s), mega(rdma.ate_per_s), Table::num(ratio, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(crossover: %.2fx at 10 Gbps -> %.2fx at 100 Gbps)\n", ratio_10g, ratio_100g);

  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());

  if (ratio_100g < 2.0) {
    std::fprintf(stderr,
                 "FAIL: RDMA-UC goodput is %.2fx UDP-MTU at 100 Gbps (expected >= 2x)\n",
                 ratio_100g);
    return 1;
  }
  return 0;
}
