// Ablation (§5.1): worker CPU cores vs achievable aggregation rate at
// 100 Gbps. The paper is limited to 4 cores by a Flow Director bug and
// states its 100 Gbps numbers are therefore a lower bound; this sweep shows
// where the core count stops being the bottleneck.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 1);

  std::printf("=== Ablation: worker cores at 100 Gbps (8 workers) ===\n");
  Table table({"cores", "ATE/s (x1e6)", "% of line rate"});
  const double line = collectives::switchml_ate_rate(gbps(100), net::kDefaultElemsPerPacket);
  for (int cores : {1, 2, 4, 8, 16}) {
    core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(100), 8);
    cfg.timing_only = true;
    cfg.nic = core::switchml_worker_nic_100g(cores);
    core::Cluster cluster(cfg);
    Summary tat_ms;
    for (int r = 0; r < scale.repetitions; ++r) {
      auto tats = cluster.reduce_timing(scale.tensor_elems);
      for (Time t : tats) tat_ms.add(to_msec(t));
    }
    const double ate = static_cast<double>(scale.tensor_elems) / (tat_ms.median() / 1e3);
    table.add_row({std::to_string(cores), mega(ate), Table::num(ate / line * 100, 1) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(the paper's testbed was pinned at 4 cores; §5.1 calls those numbers a lower bound)\n");
  return 0;
}
