// Figure 2: effect of the aggregator pool size s on tensor aggregation time
// (TAT) and per-packet RTT, 8 workers at 10 Gbps.
//
// Shape to reproduce: TAT decreases as s grows toward ceil(BDP/b) (§3.6),
// reaches the line-rate floor, and stays flat after that, while per-packet
// RTT keeps growing with s (extra in-flight packets only add queueing).
// The paper selects s=128 at 10 Gbps and s=512 at 100 Gbps.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 4'000'000, 2);
  const std::uint64_t tensor_bytes = scale.tensor_elems * 4;
  MetricsSidecar sidecar("fig2_pool_size_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fig2_pool_size", argc, argv);

  for (BitsPerSecond rate : {gbps(10), gbps(100)}) {
    std::printf("=== Figure 2: pool size sweep, %lld Gbps, tensor %.1f MB, 8 workers ===\n",
                static_cast<long long>(rate / kGbps),
                static_cast<double>(tensor_bytes) / 1e6);
    Table table({"pool size", "TAT [ms]", "RTT [us]", "TAT @ line rate [ms]"});
    const double line_ms =
        collectives::tat_seconds_at(
            collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket),
            scale.tensor_elems) *
        1e3;
    for (std::uint32_t s : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
      const std::string label =
          std::to_string(rate / kGbps) + "gbps.pool-" + std::to_string(s);
      auto r = measure_switchml(rate, 8, scale, s, false, 0.0, 4, 0.0, false, &sidecar, label,
                                &timeline_req);
      table.add_row({std::to_string(s), Table::num(r.tat_ms), Table::num(r.rtt_us),
                     Table::num(line_ms)});
      report.add(label + ".tat_ms", r.tat_ms);
      report.add(label + ".rtt_us", r.rtt_us);
      report.add(label + ".rtt_p99_us", r.rtt_p99_us);
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("(paper's deployed choice: s = %s; past the BDP, extra slots only add\n"
                " queueing RTT — and once RTT approaches the fixed 1 ms RTO, spurious\n"
                " retransmissions inflate TAT, which is precisely why §3.6 tunes s to the\n"
                " bandwidth-delay product instead of 'as large as fits')\n\n",
                rate >= gbps(100) ? "512" : "128");
  }
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
