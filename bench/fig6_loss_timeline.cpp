// Figure 6: timeline of update packets sent per 10 ms at one representative
// worker during a single tensor aggregation, with 0%, 0.01% and 1% uniform
// loss; the TAT for each case is marked, along with the resent-packet counts.
//
// Shape to reproduce: SwitchML maintains a sending rate close to the ideal
// packet rate and recovers quickly; at 1% loss the tail of the aggregation
// slows down because some slots are unevenly hit by losses (§5.5's
// work-stealing remark).
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const std::uint64_t elems = fast ? 1'000'000 : 12'500'000; // 50 MB default
  const BitsPerSecond rate = gbps(10);

  // Ideal packet rate: line-rate 180-byte packets.
  const double ideal_pkts_per_10ms = static_cast<double>(rate) / 8.0 / 180.0 / 100.0;
  std::printf("=== Figure 6: packets sent per 10 ms at worker 0 (10 Gbps, 8 workers) ===\n");
  std::printf("tensor: %.1f MB; ideal packet rate: %.0f pkts / 10 ms\n\n",
              static_cast<double>(elems) * 4 / 1e6, ideal_pkts_per_10ms);

  for (double loss : {0.0, 0.0001, 0.01}) {
    core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, 8);
    cfg.timing_only = true;
    cfg.loss_prob = loss;
    cfg.adaptive_rto = true; // see fig5: recovers in ~4 RTTs like the paper
    core::Cluster cluster(cfg);
    cluster.worker(0).enable_tx_timeline(msec(10));
    auto tats = cluster.reduce_timing(elems);

    const auto& buckets = cluster.worker(0).tx_timeline();
    std::printf("--- loss %.2f%%: TAT %.0f ms, resent %llu packets ---\n", loss * 100,
                to_msec(tats[0]),
                static_cast<unsigned long long>(cluster.worker(0).counters().retransmissions));
    std::printf("t[ms] ");
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (b % 16 == 0 && b) std::printf("\n      ");
      std::printf("%6llu", static_cast<unsigned long long>(buckets[b]));
    }
    std::printf("\n\n");
  }
  return 0;
}
