// Figure 6: timeline of update packets sent per 10 ms at one representative
// worker during a single tensor aggregation, with 0%, 0.01% and 1% uniform
// loss; the TAT for each case is marked, along with the resent-packet counts.
//
// Shape to reproduce: SwitchML maintains a sending rate close to the ideal
// packet rate and recovers quickly; at 1% loss the tail of the aggregation
// slows down because some slots are unevenly hit by losses (§5.5's
// work-stealing remark).
//
// Observability surfaces exercised here:
//  - the per-10ms buckets are TimelineRecorder deltas of the worker's
//    NIC-level "updates_wired" counter (sampled on the sim clock);
//  - the lossy (1%) run writes a full time-series sidecar
//    (fig6_timeline.jsonl: every counter as a rate, every gauge as a level,
//    including retransmissions/s and in-flight slots) and a Chrome-trace JSON
//    (fig6_trace.json) loadable in Perfetto / chrome://tracing;
//  - `--timeline-out PREFIX` additionally writes a sidecar per loss point.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/tracing.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const std::uint64_t elems = fast ? 1'000'000 : 12'500'000; // 50 MB default
  const BitsPerSecond rate = gbps(10);
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(10));
  MetricsSidecar sidecar("fig6_loss_timeline_metrics.json");
  BenchReport report("fig6_loss_timeline", argc, argv);

  // Ideal packet rate: line-rate 180-byte packets.
  const double ideal_pkts_per_10ms = static_cast<double>(rate) / 8.0 / 180.0 / 100.0;
  std::printf("=== Figure 6: packets sent per 10 ms at worker 0 (10 Gbps, 8 workers) ===\n");
  std::printf("tensor: %.1f MB; ideal packet rate: %.0f pkts / 10 ms\n\n",
              static_cast<double>(elems) * 4 / 1e6, ideal_pkts_per_10ms);

  for (double loss : {0.0, 0.0001, 0.01}) {
    core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, 8);
    cfg.timing_only = true;
    cfg.loss_prob = loss;
    cfg.adaptive_rto = true; // see fig5: recovers in ~4 RTTs like the paper

    // The 1% run doubles as the structured-tracing demo: capture the first
    // chunk of worker/switch/link events for Perfetto. The buffer is bounded;
    // overflow shows up in the drop counters, never silently.
    const bool traced = loss == 0.01;
    std::unique_ptr<trace::TraceSink> sink;
    std::unique_ptr<trace::TraceSink::Scope> scope;
    if (traced) {
      // All categories by default; `--trace-mask NAMES` narrows (e.g.
      // --trace-mask worker,flow keeps the per-chunk flow arrows readable).
      sink = std::make_unique<trace::TraceSink>(
          fast ? (1u << 16) : (1u << 20), trace_mask_from_args(argc, argv, trace::kCatAll));
      scope = std::make_unique<trace::TraceSink::Scope>(sink.get());
    }

    core::Cluster cluster(cfg);
    TimelineRecorder::Config tc;
    tc.period = msec(10);
    TimelineRecorder timeline(cluster.simulation(), cluster.metrics(), tc);
    timeline.start();
    auto tats = cluster.reduce_timing(elems);
    timeline.finish();

    const auto buckets = timeline.deltas("worker-0.updates_wired");
    // Tail view from the registry histograms. The per-packet RTT is
    // Karn-filtered (clean exchanges only), so loss barely moves it; the
    // switch's slot dwell (claim -> complete) absorbs every RTO stall and is
    // where the 1%-loss tail shows up.
    const Histogram rtts = merged_histogram(cluster.metrics(), ".rtt_ns");
    const Histogram dwell = merged_histogram(cluster.metrics(), ".slot_dwell_ns");
    const double p99_us = static_cast<double>(rtts.percentile(99)) / 1e3;
    const double dwell_p99_us = static_cast<double>(dwell.percentile(99)) / 1e3;
    std::printf("--- loss %.2f%%: TAT %.0f ms, resent %llu packets, p99 RTT %.1f us, "
                "p99 slot dwell %.1f us ---\n",
                loss * 100, to_msec(tats[0]),
                static_cast<unsigned long long>(cluster.worker(0).counters().retransmissions),
                p99_us, dwell_p99_us);
    const std::string label = "loss" + std::to_string(static_cast<int>(loss * 10000));
    sidecar.record(label, cluster.metrics());
    report.add(label + ".tat_ms", to_msec(tats[0]));
    report.add(label + ".resent_packets",
               static_cast<double>(cluster.worker(0).counters().retransmissions));
    report.add(label + ".rtt_p99_us", p99_us);
    report.add(label + ".dwell_p99_us", dwell_p99_us);
    std::printf("t[ms] ");
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (b % 16 == 0 && b) std::printf("\n      ");
      std::printf("%6llu", static_cast<unsigned long long>(buckets[b]));
    }
    std::printf("\n\n");

    if (traced) {
      timeline.write("fig6_timeline.jsonl", TimelineRecorder::Format::kJsonl);
      sink->write_chrome_json("fig6_trace.json");
      std::printf("wrote fig6_timeline.jsonl (%zu samples) and fig6_trace.json "
                  "(%zu events, %llu dropped)\n\n",
                  timeline.sample_count(), sink->events().size(),
                  static_cast<unsigned long long>(sink->total_drops()));
    }
    if (timeline_req.enabled()) write_timeline(timeline_req, timeline, label);
  }
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
