// Microbenchmark: raw event-engine throughput — schedule -> dispatch and the
// cancel path — across closure capture sizes (8/24/48 bytes, spanning the
// old std::function inline limit) and queue depths (1K shallow, 64K deep
// enough that heap sifts leave L1).
//
// Unlike micro_timer (google-benchmark, wall-clock numbers only), this is a
// BenchReport bench so scripts/bench_baseline.sh runs it in the smoke set:
// the deterministic counters (events dispatched, capture checksum) are
// guarded at 1e-9 against the committed baseline — they catch lost,
// duplicated, reordered-into-wrong-payload, or corrupted closures — while
// the host-measured throughput is recorded as info() only, never compared
// (CI runner speeds vary far too much for a wall-clock gate).
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace switchml;
using Clock = std::chrono::steady_clock;

// Callable with a tunable capture footprint: one accumulator pointer plus
// padding up to `Bytes` total. The callback reads the padding so the capture
// bytes genuinely travel through the slab (a dead pad would let the
// optimizer shrink the copy).
template <std::size_t Bytes>
struct Cb {
  static_assert(Bytes > sizeof(std::uint64_t*));
  std::uint64_t* acc;
  unsigned char pad[Bytes - sizeof(std::uint64_t*)];
  void operator()() { *acc += 1 + pad[sizeof(pad) - 1]; }
};
template <>
struct Cb<sizeof(std::uint64_t*)> {
  std::uint64_t* acc;
  void operator()() { *acc += 1; }
};
static_assert(sizeof(Cb<8>) == 8 && sizeof(Cb<24>) == 24 && sizeof(Cb<48>) == 48);
static_assert(sim::EventFn::fits<Cb<48>>());

template <std::size_t Bytes>
Cb<Bytes> make_cb(std::uint64_t* acc, std::size_t i) {
  Cb<Bytes> cb{};
  cb.acc = acc;
  if constexpr (Bytes > sizeof(std::uint64_t*))
    cb.pad[sizeof(cb.pad) - 1] = static_cast<unsigned char>(i);
  return cb;
}

struct Result {
  std::uint64_t events = 0;   // live events dispatched (deterministic)
  std::uint64_t checksum = 0; // payload accumulator (deterministic)
  double mops = 0.0;          // schedule+dispatch pairs per second / 1e6 (host)
};

// Fill the queue to `depth`, drain it, repeat until `total` events ran.
template <std::size_t Bytes>
Result schedule_fire(std::size_t depth, std::uint64_t total) {
  sim::Simulation s;
  std::uint64_t acc = 0;
  std::uint64_t scheduled = 0;
  const auto t0 = Clock::now();
  while (scheduled < total) {
    const Time base = s.now();
    for (std::size_t i = 0; i < depth; ++i)
      s.schedule_at(base + static_cast<Time>(i + 1), make_cb<Bytes>(&acc, i));
    scheduled += depth;
    s.run();
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return {s.events_executed(), acc, static_cast<double>(scheduled) / secs / 1e6};
}

// Arm `depth` timers, cancel them all, drain: the retransmission fast path
// where the ACK wins and every queued key pops inert.
Result cancel_fire(std::size_t depth, std::uint64_t total) {
  sim::Simulation s;
  std::uint64_t acc = 0;
  std::uint64_t scheduled = 0;
  std::vector<sim::TimerHandle> handles(depth);
  const auto t0 = Clock::now();
  while (scheduled < total) {
    for (std::size_t i = 0; i < depth; ++i)
      handles[i] = s.schedule_timer(static_cast<Time>(i + 1), make_cb<8>(&acc, i));
    for (auto& h : handles) h.cancel();
    scheduled += depth;
    s.run(); // every pop is inert: the clock never even advances
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return {s.events_executed(), acc, static_cast<double>(scheduled) / secs / 1e6};
}

// Steady-state churn: one self-re-arming timer, so every iteration recycles
// the same slab slot (the pattern of a protocol RTO timer under load).
Result churn(std::uint64_t total) {
  sim::Simulation s;
  std::uint64_t remaining = total;
  const auto t0 = Clock::now();
  std::function<void()> rearm = [&] {
    if (--remaining > 0) s.schedule_timer(1, rearm);
  };
  s.schedule_timer(1, rearm);
  s.run();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return {s.events_executed(), total - remaining, static_cast<double>(total) / secs / 1e6};
}

} // namespace

int main(int argc, char** argv) {
  const bool fast = bench::has_flag(argc, argv, "--fast");
  const std::uint64_t total = fast ? (1ull << 17) : (1ull << 21);

  bench::BenchReport report("micro_events", argc, argv);
  report.info("ops_per_scenario", std::to_string(total));

  std::printf("%-22s %12s %12s %10s\n", "scenario", "events", "checksum", "Mops/s");
  const auto row = [&](const std::string& name, const Result& r) {
    std::printf("%-22s %12llu %12llu %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.checksum), r.mops);
    report.add(name + ".events", static_cast<double>(r.events));
    report.add(name + ".checksum", static_cast<double>(r.checksum));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", r.mops);
    report.info(name + ".mops", buf);
  };

  for (const std::size_t depth : {std::size_t{1} << 10, std::size_t{1} << 16}) {
    const std::string d = "_d" + std::to_string(depth);
    row("fire_cap8" + d, schedule_fire<8>(depth, total));
    row("fire_cap24" + d, schedule_fire<24>(depth, total));
    row("fire_cap48" + d, schedule_fire<48>(depth, total));
    row("cancel_cap8" + d, cancel_fire(depth, total));
  }
  row("churn_d1", churn(total));

  const std::string path = report.write();
  if (path.empty()) {
    std::fprintf(stderr, "micro_events: failed to write report\n");
    return 1;
  }
  std::printf("\nreport: %s\n", path.c_str());
  return 0;
}
