// Recovery sweep: cost of the switch-restart recovery protocol and of the
// graceful degradation to the streaming-PS fallback, on the rack fabric
// (8 workers, 10 Gbps) plus one hierarchy kill point.
//
//   1. Restart under burst loss, restart time swept across {25,50,75}% of
//      the clean TAT: the epoch/resync + sync-query/rescue escalation must
//      converge every placement, including restarts that race in-flight
//      result losses. Reported: TAT inflation, rescues applied, epoch
//      resyncs, sync queries, and worker resync-latency percentiles.
//   2. Switch kill at 50% of the clean TAT on the rack and at the hierarchy
//      root: workers burn the dead_after retry budget, declare the switch
//      dead, and the job replays the remaining chunks on the streaming-PS
//      fallback. Reported: degraded TAT and its honest inflation (retry
//      burn + reprovisioning + PS replay).
//
// Each faulted run builds a fresh fabric (FaultPlan times are absolute).
// All reported values are sim-deterministic (kSimTol).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/fault.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

struct RecoveryResult {
  double tat_max_ms = 0.0;
  std::uint64_t rescues_applied = 0;
  std::uint64_t epoch_resyncs = 0;
  std::uint64_t sync_queries = 0;
  std::uint64_t fallbacks = 0;
  double resync_p50_ms = 0.0; // worker-wise max of the per-worker percentile
  double resync_p99_ms = 0.0;
};

RecoveryResult measure_rack(BitsPerSecond rate, int workers, std::uint64_t elems,
                            const core::FaultPlan& plan, MetricsSidecar* sidecar,
                            const std::string& label) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, workers);
  cfg.timing_only = true;
  cfg.faults = plan;
  core::Cluster cluster(cfg);
  const auto tats = cluster.reduce_timing(elems);

  RecoveryResult out;
  Time max_tat = 0;
  for (Time t : tats) max_tat = std::max(max_tat, t);
  out.tat_max_ms = to_msec(max_tat);
  out.rescues_applied = cluster.agg_switch().counters().rescues_applied;
  for (int i = 0; i < workers; ++i) {
    const auto& r = cluster.worker(i).recovery();
    out.epoch_resyncs += r.epoch_resyncs;
    out.sync_queries += r.sync_queries;
    const auto& h = cluster.worker(i).resync_hist();
    if (h.count() > 0) {
      out.resync_p50_ms = std::max(out.resync_p50_ms, static_cast<double>(h.percentile(50)) / 1e6);
      out.resync_p99_ms = std::max(out.resync_p99_ms, static_cast<double>(h.percentile(99)) / 1e6);
    }
  }
  out.fallbacks = cluster.fabric().fallback_engaged() ? 1 : 0;
  if (sidecar != nullptr) sidecar->record(label, cluster.metrics());
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 1);
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;

  std::printf("=== Recovery sweep: restart resync + fallback degradation "
              "(10 Gbps, %d workers) ===\n",
              workers);
  MetricsSidecar sidecar("recovery_sweep_metrics.json");
  BenchReport report("recovery_sweep", argc, argv);

  // The clean, restart-50pct, and kill-rack runs carry the per-chunk span
  // ledger; kill-rack is the interesting one — its attr block shows the
  // recovery/fallback components (retry burn, PS replay) that the honest
  // inflation number folds into one scalar. Each report also pins the
  // conservation invariant (max_residual_ns == 0) in the recorded baseline.
  RecoveryResult clean;
  {
    ScopedAttribution attrib;
    clean = measure_rack(rate, workers, scale.tensor_elems, {}, &sidecar, "clean");
    attrib.report(report, "clean");
  }
  report.add("clean.tat_max_ms", clean.tat_max_ms);
  std::printf("clean TAT: %s\n\n",
              format_duration(static_cast<Time>(clean.tat_max_ms * 1e6)).c_str());
  const Time clean_max = static_cast<Time>(clean.tat_max_ms * 1e6);

  // --- 1. restart placement under burst loss -------------------------------
  // Bursty loss keeps results in flight at risk, so some restart placements
  // race a concurrent result loss — the case only the sync-query/rescue
  // escalation can converge. The burst-only run sets the timescale (the
  // lossy run is RTO-dominated, far longer than the clean TAT); restarts
  // are then swept across fractions of THAT run so the placements actually
  // differ, and inflation is reported against the burst-only reference to
  // isolate the restart's own cost.
  net::BurstLossConfig ge;
  ge.p_enter = 0.005;
  ge.p_exit = 0.25;
  ge.loss_bad = 0.5;
  core::FaultPlan burst_plan;
  burst_plan.bursts.push_back({-1, ge}); // every link
  const RecoveryResult burst_only =
      measure_rack(rate, workers, scale.tensor_elems, burst_plan, &sidecar, "burst-only");
  report.add("burst-only.tat_max_ms", burst_only.tat_max_ms);
  const Time burst_max = static_cast<Time>(burst_only.tat_max_ms * 1e6);
  std::printf("burst-only TAT: %s (%.2fx clean)\n\n",
              format_duration(burst_max).c_str(), burst_only.tat_max_ms / clean.tat_max_ms);

  Table restarts({"restart at", "TAT (max)", "vs burst-only", "rescues", "resyncs",
                  "sync queries", "resync p99", "fallback"});
  for (double frac : {0.25, 0.50, 0.75}) {
    core::FaultPlan plan = burst_plan;
    plan.switch_restarts.push_back({0, static_cast<Time>(frac * static_cast<double>(burst_max))});
    const std::string tag = "restart-" + Table::num(frac * 100, 0) + "pct";
    RecoveryResult r;
    {
      ScopedAttribution attrib;
      r = measure_rack(rate, workers, scale.tensor_elems, plan, &sidecar, tag);
      if (frac == 0.50) attrib.report(report, tag);
    }
    const double inflation = r.tat_max_ms / burst_only.tat_max_ms;
    restarts.add_row({Table::num(frac * 100, 0) + "% of lossy TAT",
                      format_duration(static_cast<Time>(r.tat_max_ms * 1e6)),
                      Table::num(inflation, 2) + "x",
                      Table::num(static_cast<double>(r.rescues_applied), 0),
                      Table::num(static_cast<double>(r.epoch_resyncs), 0),
                      Table::num(static_cast<double>(r.sync_queries), 0),
                      format_duration(static_cast<Time>(r.resync_p99_ms * 1e6)),
                      r.fallbacks ? "engaged" : "no"});
    report.add(tag + ".tat_max_ms", r.tat_max_ms);
    report.add(tag + ".inflation", inflation);
    report.add(tag + ".epoch_resyncs", static_cast<double>(r.epoch_resyncs));
    report.add(tag + ".sync_queries", static_cast<double>(r.sync_queries));
    report.add(tag + ".resync_p99_ms", r.resync_p99_ms);
  }
  std::printf("switch restart under Gilbert-Elliott burst loss (every link):\n%s\n",
              restarts.to_string().c_str());

  // --- 2. kill -> fallback degradation --------------------------------------
  // The kill lands at 50% of the clean TAT; the degraded TAT then pays the
  // backed-off dead_after retry burn, the reprovisioning delay, and the
  // streaming-PS replay of the remaining chunks.
  Table kills({"fabric", "TAT (max)", "inflation", "fallback"});
  {
    core::FaultPlan plan;
    plan.switch_kills.push_back({0, clean_max / 2});
    RecoveryResult r;
    {
      ScopedAttribution attrib;
      r = measure_rack(rate, workers, scale.tensor_elems, plan, &sidecar, "kill-rack");
      attrib.report(report, "kill-rack");
      attrib.write_jsonl("recovery_sweep_attribution.jsonl");
    }
    const double inflation = r.tat_max_ms / clean.tat_max_ms;
    kills.add_row({"rack (8 workers)", format_duration(static_cast<Time>(r.tat_max_ms * 1e6)),
                   Table::num(inflation, 2) + "x", r.fallbacks ? "engaged" : "NO"});
    report.add("kill-rack.tat_max_ms", r.tat_max_ms);
    report.add("kill-rack.inflation", inflation);
    report.add("kill-rack.fallbacks", static_cast<double>(r.fallbacks));
  }
  {
    core::HierarchyConfig cfg;
    cfg.racks = 2;
    cfg.workers_per_rack = 4;
    cfg.timing_only = true;
    core::HierarchicalCluster clean_h(cfg);
    const auto clean_tats = clean_h.reduce_timing(scale.tensor_elems);
    const Time clean_h_max = *std::max_element(clean_tats.begin(), clean_tats.end());

    cfg.faults.switch_kills.push_back({0, clean_h_max / 2});
    core::HierarchicalCluster cluster(cfg);
    const auto tats = cluster.reduce_timing(scale.tensor_elems);
    const Time h_max = *std::max_element(tats.begin(), tats.end());
    const double inflation = static_cast<double>(h_max) / static_cast<double>(clean_h_max);
    const bool engaged = cluster.fabric().fallback_engaged();
    kills.add_row({"hierarchy root (2x4)", format_duration(h_max),
                   Table::num(inflation, 2) + "x", engaged ? "engaged" : "NO"});
    sidecar.record("kill-hierarchy-root", cluster.metrics());
    report.add("kill-root.tat_max_ms", to_msec(h_max));
    report.add("kill-root.inflation", inflation);
    report.add("kill-root.fallbacks", engaged ? 1.0 : 0.0);
  }
  std::printf("switch kill at 50%% of clean TAT:\n%s\n", kills.to_string().c_str());

  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
