// §6 "Lack of congestion control": the pool's self-clocking doubles as flow
// control — if one worker's downlink is congested (or the worker is a
// straggler), the rate of aggregation results it can absorb drops, and since
// a slot is only released when EVERY worker contributes, all workers slow
// down together instead of overrunning the congested path.
//
// Second half: why §6 warns that the RTO must follow the end-to-end RTT —
// with the congested downlink, RTT exceeds a fixed 1 ms timeout and every
// packet is retransmitted spuriously; the Jacobson/Karels adaptive RTO
// (our implementation of the paper's suggestion) eliminates the storm.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

struct Run {
  bool finished = true;
  double tat_ms = 0;
  std::uint64_t retransmissions = 0;
  double rto_ms = 0;
};

Run run_congested(double slowdown, bool adaptive, std::uint64_t elems) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), 8);
  cfg.timing_only = true;
  cfg.adaptive_rto = adaptive;
  core::Cluster cluster(cfg);
  // Congest worker 0's downlink: the switch->worker0 direction runs at
  // rate/slowdown. (set_rate applies to both directions of the link; the
  // upstream direction is not the bottleneck here.)
  cluster.link(0).set_rate(static_cast<BitsPerSecond>(gbps(10) / slowdown));

  auto& sim = cluster.simulation();
  std::vector<Time> tat(8, -1);
  int done = 0;
  for (int w = 0; w < 8; ++w)
    cluster.worker(w).start_reduction(elems, [&, w] {
      tat[static_cast<std::size_t>(w)] = sim.now();
      ++done;
    });
  // A melted-down fixed RTO retransmits every packet hundreds of times; cap
  // the run at 2 simulated seconds and report DNF.
  sim.run_until(sec(2));

  Run r;
  r.finished = done == 8;
  if (r.finished) r.tat_ms = to_msec(*std::max_element(tat.begin(), tat.end()));
  for (int w = 0; w < 8; ++w) r.retransmissions += cluster.worker(w).counters().retransmissions;
  r.rto_ms = to_msec(cluster.worker(0).current_rto());
  return r;
}

} // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 1'000'000, 1);

  std::printf("=== Congestion / straggler: self-clocking + adaptive RTO (§6) ===\n");
  std::printf("worker 0's downlink degraded by a factor; all 8 workers self-clock down.\n\n");
  Table table({"slowdown", "TAT fixed-RTO [ms]", "retx (fixed)", "TAT adaptive [ms]",
               "retx (adaptive)", "final RTO [ms]"});
  for (double slowdown : {1.0, 4.0, 16.0, 64.0}) {
    const Run fixed = run_congested(slowdown, false, scale.tensor_elems);
    const Run adaptive = run_congested(slowdown, true, scale.tensor_elems);
    table.add_row({Table::num(slowdown, 0) + "x",
                   fixed.finished ? Table::num(fixed.tat_ms) : "DNF (>2000)",
                   std::to_string(fixed.retransmissions),
                   adaptive.finished ? Table::num(adaptive.tat_ms) : "DNF (>2000)",
                   std::to_string(adaptive.retransmissions), Table::num(adaptive.rto_ms, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(TAT scales with the slowest path for every worker — the self-clocking\n"
              " property. Once queueing pushes RTT past the fixed 1 ms timeout, the fixed\n"
              " RTO melts down — every packet retransmitted, TAT x1000 — while the adaptive\n"
              " estimator tracks the inflated RTT and completes near the bandwidth bound;\n"
              " its only cost is a transient burst of spurious retransmissions while the\n"
              " queue is still ramping, visible in the milder-congestion rows.)\n");
  return 0;
}
