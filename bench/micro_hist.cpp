// Microbenchmark (google-benchmark): cost of the Histogram hot path.
// record() runs on every packet RTT sample, link transmit, and slot
// completion, so it must stay a handful of scalar ops — no allocation, no
// branch on percentile state. BM_HistogramRecord measures the steady-state
// record() throughput over a realistic spread of magnitudes (1 ns .. ~1 s);
// BM_HistogramRecordConstant isolates the best case (one hot bucket);
// BM_HistogramQuantiles prices the snapshot-time bucket walk, which is
// deliberately off the hot path.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"

namespace {

using namespace switchml;

// Pre-generated pseudo-random values spanning the bucket range, so the
// benchmark measures record() and not the generator.
std::vector<std::int64_t> make_values(std::size_t n) {
  std::vector<std::int64_t> vs(n);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto& v : vs) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = static_cast<std::int64_t>(x % 1'000'000'000ull); // 0 .. 1 s in ns
  }
  return vs;
}

void BM_HistogramRecord(benchmark::State& state) {
  const auto values = make_values(1 << 16);
  Histogram h;
  std::size_t i = 0;
  for (auto _ : state) {
    h.record(values[i]);
    if (++i == values.size()) i = 0;
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramRecordConstant(benchmark::State& state) {
  Histogram h;
  for (auto _ : state) {
    h.record(1234);
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecordConstant);

void BM_HistogramQuantiles(benchmark::State& state) {
  const auto values = make_values(1 << 16);
  Histogram h;
  for (std::int64_t v : values) h.record(v);
  for (auto _ : state) {
    auto q = h.quantiles();
    benchmark::DoNotOptimize(q.p99);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramQuantiles);

void BM_HistogramMerge(benchmark::State& state) {
  const auto values = make_values(1 << 16);
  Histogram src;
  for (std::int64_t v : values) src.record(v);
  Histogram dst;
  for (auto _ : state) {
    dst.merge(src);
    benchmark::DoNotOptimize(dst.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramMerge);

} // namespace

BENCHMARK_MAIN();
