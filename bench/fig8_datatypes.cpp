// Figure 8: TAT when aggregating native int32 tensors (no scaling or
// conversion), float32 tensors (scale + convert on the worker), and
// half-precision float16 tensors (half the wire bytes, switch-side table
// conversion), for SwitchML and Gloo, with line-rate references.
//
// Methodology: we measure the REAL conversion cost of the §5.5 pipeline
// (float32 -> scale -> int32 -> htonl, and the reverse) on this machine's
// CPU, then charge it to the simulated workers' NIC cores as per-byte work —
// exactly where the paper's SSE/AVX conversion runs (inside the DPDK
// processing loop). Shape to reproduce: float32 is indistinguishable from
// int32 because the conversion rides idle core headroom, and float16 halves
// the TAT.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "quant/fixed_point.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

// Real measured cost of the full wire pipeline, in ns per tensor byte.
double conversion_ns_per_byte() {
  const std::size_t n = 1 << 22;
  std::vector<float> x(n, 1.2345f);
  std::vector<std::int32_t> q(n);
  const auto t0 = std::chrono::steady_clock::now();
  quant::quantize(x, 1e6, q);
  quant::htonl_inplace(q);
  quant::ntohl_inplace(q);
  quant::dequantize(q, 1e6, x);
  const auto t1 = std::chrono::steady_clock::now();
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  // Half the pipeline runs on the TX path, half on RX; report per direction.
  return ns / 2.0 / (static_cast<double>(n) * 4.0);
}

} // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 4'000'000, 2);
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;

  std::printf("=== Figure 8: TAT by data type (10 Gbps, 8 workers, %.1f MB tensor) ===\n",
              static_cast<double>(scale.tensor_elems) * 4 / 1e6);

  MetricsSidecar sidecar("fig8_datatypes_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fig8_datatypes", argc, argv);
  const double conv = conversion_ns_per_byte();

  // int32 native: identical wire format, no conversion work.
  const auto int32_r = measure_switchml(rate, workers, scale, 0, false, 0.0, 4, 0.0, false,
                                        &sidecar, "int32.switchml", &timeline_req);
  // float32: same wire format + the measured conversion cost per byte on the
  // worker cores.
  const auto f32_r = measure_switchml(rate, workers, scale, 0, false, 0.0, 4, conv, false,
                                      &sidecar, "float32.switchml", &timeline_req);
  // float16: half the payload bytes on the wire (conversion cost included;
  // halves are produced by the same vectorized loop).
  const auto f16_r = measure_switchml(rate, workers, scale, 0, false, 0.0, 2, conv, false,
                                      &sidecar, "float16.switchml", &timeline_req);

  const auto gloo = measure_baseline(BaselineKind::GlooRing, rate, workers, scale, 0.0,
                                     &sidecar, "float32.gloo", &timeline_req);

  // int32/gloo TATs are sim-deterministic; the float paths fold in the
  // host-measured conversion cost, so they get the loose tolerance.
  report.add("int32.switchml.tat_ms", int32_r.tat_ms);
  report.add("float32.switchml.tat_ms", f32_r.tat_ms, BenchReport::kLooseTol);
  report.add("float16.switchml.tat_ms", f16_r.tat_ms, BenchReport::kLooseTol);
  report.add("float32.gloo.tat_ms", gloo.tat_ms);
  report.add("conversion_ns_per_byte", conv, BenchReport::kLooseTol);

  const double line_ms =
      collectives::tat_seconds_at(
          collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket),
          scale.tensor_elems) * 1e3;
  const double line16_ms =
      collectives::tat_seconds_at(
          collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket, 2),
          scale.tensor_elems) * 1e3;

  Table table({"data type", "SwitchML [ms]", "Gloo [ms]", "line rate [ms]"});
  table.add_row({"int32", Table::num(int32_r.tat_ms), Table::num(gloo.tat_ms),
                 Table::num(line_ms)});
  table.add_row({"float32", Table::num(f32_r.tat_ms), Table::num(gloo.tat_ms),
                 Table::num(line_ms)});
  table.add_row({"float16 (SwitchML 16)", Table::num(f16_r.tat_ms), "-",
                 Table::num(line16_ms)});
  std::printf("%s", table.to_string().c_str());
  std::printf("(measured conversion cost: %.3f ns/byte/direction; float32 overhead vs int32: "
              "%.1f%%)\n",
              conv, (f32_r.tat_ms / int32_r.tat_ms - 1.0) * 100);
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
