// Figure 4: aggregated tensor elements per second (ATE/s) as the number of
// workers grows (4/8/16), on 10 and 100 Gbps networks, for SwitchML vs the
// all-reduce libraries (Gloo, NCCL) and PS strategies, with the line-rate
// bounds the paper plots as dashed lines. Also §5.4's Gloo-RDMA comparison.
//
// Paper's shape to reproduce: SwitchML is highest and flat in n; Dedicated PS
// roughly matches it (using 2x machines); Colocated PS reaches about half;
// NCCL > Gloo, both well below the ring bound and declining slightly with n.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 2);
  MetricsSidecar sidecar("fig4_ate_scaling_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fig4_ate_scaling", argc, argv);

  for (BitsPerSecond rate : {gbps(10), gbps(100)}) {
    std::printf("=== Figure 4: ATE/s (x1e6), %lld Gbps, tensor %.1f MB ===\n",
                static_cast<long long>(rate / kGbps),
                static_cast<double>(scale.tensor_elems) * 4 / 1e6);
    Table table({"strategy", "n=4", "n=8", "n=16"});
    // The paper draws fig 4 as violins; the registry's per-worker tensor
    // completion histograms give the same spread (median [min, max] across
    // workers and reps), plus the merged per-packet p99 RTT tail.
    Table violin({"n", "SwitchML TAT [ms] (median [min, max])", "p99 RTT [us]"});

    const std::string gtag = std::to_string(rate / kGbps) + "gbps.";
    auto row = [&](const std::string& name, const std::string& tag, auto&& fn) {
      std::vector<std::string> cells{name};
      for (int n : {4, 8, 16}) {
        const std::string label = gtag + tag + "-n" + std::to_string(n);
        const RateResult r = fn(n, label);
        cells.push_back(mega(r.ate_per_s));
        report.add(label + ".ate_per_s", r.ate_per_s);
        if (tag == "switchml")
          violin.add_row({std::to_string(n),
                          Table::num(r.tat_p50_ms) + " [" + Table::num(r.tat_min_ms) + ", " +
                              Table::num(r.tat_max_ms) + "]",
                          Table::num(r.rtt_p99_us)});
      }
      table.add_row(std::move(cells));
    };

    row("SwitchML", "switchml", [&](int n, const std::string& label) {
      return measure_switchml(rate, n, scale, 0, false, 0.0, 4, 0.0, false, &sidecar, label,
                              &timeline_req);
    });
    row("Gloo", "gloo", [&](int n, const std::string& label) {
      return measure_baseline(BaselineKind::GlooRing, rate, n, scale, 0.0, &sidecar, label,
                              &timeline_req);
    });
    row("NCCL", "nccl", [&](int n, const std::string& label) {
      return measure_baseline(BaselineKind::NcclRing, rate, n, scale, 0.0, &sidecar, label,
                              &timeline_req);
    });
    row("Gloo-RDMA (5.4)", "gloo-rdma", [&](int n, const std::string& label) {
      return measure_baseline(BaselineKind::GlooRdmaRing, rate, n, scale, 0.0, &sidecar, label);
    });
    row("Halving-doubling", "halvdoub", [&](int n, const std::string& label) {
      return measure_baseline(BaselineKind::HalvingDoubling, rate, n, scale, 0.0, &sidecar,
                              label);
    });
    row("Dedicated PS", "dedicated-ps", [&](int n, const std::string& label) {
      return measure_baseline(BaselineKind::DedicatedPs, rate, n, scale, 0.0, &sidecar, label);
    });
    row("Colocated PS", "colocated-ps", [&](int n, const std::string& label) {
      return measure_baseline(BaselineKind::ColocatedPs, rate, n, scale, 0.0, &sidecar, label);
    });
    table.add_row({"line rate (SwitchML)",
                   mega(collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket)),
                   mega(collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket)),
                   mega(collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket))});
    table.add_row({"line rate (ring)", mega(collectives::ring_ate_rate(rate, 4)),
                   mega(collectives::ring_ate_rate(rate, 8)),
                   mega(collectives::ring_ate_rate(rate, 16))});

    std::printf("%s", table.to_string().c_str());
    std::printf("(SwitchML line-rate bound: %selem/s, independent of n)\n\n",
                format_si(collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket))
                    .c_str());
    std::printf("per-worker completion spread (registry histograms):\n%s\n",
                violin.to_string().c_str());
  }
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
