// Figure 4: aggregated tensor elements per second (ATE/s) as the number of
// workers grows (4/8/16), on 10 and 100 Gbps networks, for SwitchML vs the
// all-reduce libraries (Gloo, NCCL) and PS strategies, with the line-rate
// bounds the paper plots as dashed lines. Also §5.4's Gloo-RDMA comparison.
//
// Paper's shape to reproduce: SwitchML is highest and flat in n; Dedicated PS
// roughly matches it (using 2x machines); Colocated PS reaches about half;
// NCCL > Gloo, both well below the ring bound and declining slightly with n.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 2);
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));

  for (BitsPerSecond rate : {gbps(10), gbps(100)}) {
    std::printf("=== Figure 4: ATE/s (x1e6), %lld Gbps, tensor %.1f MB ===\n",
                static_cast<long long>(rate / kGbps),
                static_cast<double>(scale.tensor_elems) * 4 / 1e6);
    Table table({"strategy", "n=4", "n=8", "n=16"});

    auto row = [&](const std::string& name, auto&& fn) {
      std::vector<std::string> cells{name};
      for (int n : {4, 8, 16}) cells.push_back(mega(fn(n)));
      table.add_row(std::move(cells));
    };

    const std::string gtag = std::to_string(rate / kGbps) + "gbps.";
    row("SwitchML", [&](int n) {
      return measure_switchml(rate, n, scale, 0, false, 0.0, 4, 0.0, false, nullptr,
                              gtag + "switchml-n" + std::to_string(n), &timeline_req)
          .ate_per_s;
    });
    row("Gloo", [&](int n) {
      return measure_baseline(BaselineKind::GlooRing, rate, n, scale, 0.0, nullptr,
                              gtag + "gloo-n" + std::to_string(n), &timeline_req)
          .ate_per_s;
    });
    row("NCCL", [&](int n) {
      return measure_baseline(BaselineKind::NcclRing, rate, n, scale, 0.0, nullptr,
                              gtag + "nccl-n" + std::to_string(n), &timeline_req)
          .ate_per_s;
    });
    row("Gloo-RDMA (5.4)", [&](int n) {
      return measure_baseline(BaselineKind::GlooRdmaRing, rate, n, scale).ate_per_s;
    });
    row("Halving-doubling", [&](int n) {
      return measure_baseline(BaselineKind::HalvingDoubling, rate, n, scale).ate_per_s;
    });
    row("Dedicated PS", [&](int n) {
      return measure_baseline(BaselineKind::DedicatedPs, rate, n, scale).ate_per_s;
    });
    row("Colocated PS", [&](int n) {
      return measure_baseline(BaselineKind::ColocatedPs, rate, n, scale).ate_per_s;
    });
    row("line rate (SwitchML)", [&](int) {
      return collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket);
    });
    row("line rate (ring)", [&](int n) { return collectives::ring_ate_rate(rate, n); });

    std::printf("%s", table.to_string().c_str());
    std::printf("(SwitchML line-rate bound: %selem/s, independent of n)\n\n",
                format_si(collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket))
                    .c_str());
  }
  return 0;
}
