// Table 1: training throughput (images/s) for inception3, resnet50 and vgg16
// in an 8-worker 10 Gbps setting, batch size 64, against (a) the calculated
// ideal (8x single-GPU), (b) the single-node 8-GPU configuration (published
// numbers from [55], constants), and (c) Horovod+NCCL.
//
// Two reproductions are printed:
//   * event-driven — the §4 layer-wise training simulation: per-layer
//     gradients enter the fabric in backward order, overlap and per-tensor
//     costs emerge from the protocol (SwitchML streams; NCCL uses
//     Horovod-style fusion over the TCP ring);
//   * closed-form — the analytic overlap model fed with measured ATE/s.
//
// Shape to reproduce: SwitchML ~ multi-GPU box for inception3, well above
// NCCL everywhere, with vgg16 the most communication-bound.
#include <cstdio>

#include "bench_util.hpp"
#include "framework/training_sim.hpp"
#include "perfmodel/training_model.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 2);
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;
  const int batch = 64;

  framework::TrainingSimConfig sim_cfg;
  sim_cfg.n_workers = workers;
  sim_cfg.rate = rate;
  sim_cfg.batch = batch;
  sim_cfg.iterations = 3;
  sim_cfg.size_scale = fast ? 1.0 / 32 : 1.0 / 16;

  MetricsSidecar sidecar("table1_training_throughput_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("table1_training_throughput", argc, argv);

  const double sml_rate = measure_switchml(rate, workers, scale, 0, false, 0.0, 4, 0.0, false,
                                           &sidecar, "microbench.switchml")
                              .ate_per_s;
  const double nccl_rate = measure_baseline(BaselineKind::NcclRing, rate, workers, scale, 0.0,
                                            &sidecar, "microbench.nccl")
                               .ate_per_s;
  report.add("microbench.switchml.ate_per_s", sml_rate);
  report.add("microbench.nccl.ate_per_s", nccl_rate);

  std::printf("=== Table 1: training throughput (images/s), 8 workers @ 10 Gbps, batch %d ===\n",
              batch);
  Table table({"model", "Ideal", "Multi-GPU [55]", "Horovod+NCCL", "SwitchML"});
  Table model_table({"model", "NCCL (closed-form)", "SwitchML (closed-form)"});
  for (const auto& row : perf::table1_rows()) {
    const auto& spec = perf::model(row.name);
    attach_sim_telemetry(sim_cfg, std::string(row.name) + ".nccl", &sidecar, &timeline_req);
    const auto nccl_sim =
        framework::simulate_ring_training(spec, sim_cfg, core::nccl_tcp(rate));
    attach_sim_telemetry(sim_cfg, std::string(row.name) + ".switchml", &sidecar, &timeline_req);
    const auto sml_sim = framework::simulate_switchml_training(spec, sim_cfg);
    report.add(std::string(row.name) + ".nccl.images_per_s", nccl_sim.images_per_s);
    report.add(std::string(row.name) + ".switchml.images_per_s", sml_sim.images_per_s);
    auto pct = [&](double v) {
      return Table::num(v, 0) + " (" + Table::num(v / row.ideal * 100, 1) + "%)";
    };
    table.add_row({row.name, Table::num(row.ideal, 0), pct(row.multi_gpu),
                   pct(nccl_sim.images_per_s), pct(sml_sim.images_per_s)});

    const auto nccl_cf = perf::estimate_training(spec, workers, nccl_rate, batch,
                                                 perf::kRingPerTensorOverheadS);
    const auto sml_cf = perf::estimate_training(spec, workers, sml_rate, batch,
                                                perf::kSwitchMlPerTensorOverheadS);
    model_table.add_row({row.name, pct(nccl_cf.images_per_s), pct(sml_cf.images_per_s)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(event-driven layer-wise simulation; measured microbench ATE/s — SwitchML: "
              "%.0fM, NCCL: %.0fM)\n\n",
              sml_rate / 1e6, nccl_rate / 1e6);
  std::printf("closed-form overlap model for comparison:\n%s", model_table.to_string().c_str());
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
