// §6 multi-job (tenancy): several training jobs share one switch, each with
// its own admitted aggregator pool. Shows (a) per-job throughput is
// unaffected by concurrency — the paper's "resources used for one reduction
// are much less than 10% of switch capabilities" — and (b) the admission
// mechanism rejecting a job once the SRAM budget is exhausted.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 1'000'000, 1);

  std::printf("=== Tenancy: concurrent jobs sharing one switch (10 Gbps, 4 workers/job) ===\n");
  Table table({"concurrent jobs", "per-job ATE/s (x1e6)", "switch SRAM used"});
  for (int jobs : {1, 2, 4, 8}) {
    core::MultiJobConfig cfg;
    cfg.n_jobs = jobs;
    cfg.workers_per_job = 4;
    cfg.timing_only = true;
    core::MultiJobCluster cluster(cfg);
    auto tats = cluster.reduce_timing_all(scale.tensor_elems);
    Summary ate;
    for (const auto& job_tats : tats)
      for (Time t : job_tats)
        ate.add(static_cast<double>(scale.tensor_elems) / to_sec(t));
    char sram[32];
    std::snprintf(sram, sizeof sram, "%zu KiB",
                  cluster.agg_switch().register_bytes() / 1024);
    table.add_row({std::to_string(jobs), mega(ate.median()), sram});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Admission control: keep admitting 512-slot jobs until the budget is hit.
  std::printf("admission control against a 4 MiB SRAM budget (512-slot pools):\n");
  sim::Simulation sim;
  swprog::AggregationConfig sc;
  sc.n_workers = 8;
  sc.pool_size = 512;
  swprog::AggregationSwitch sw(sim, 1, "switch", sc);
  int admitted = 1; // job 0
  for (std::uint8_t j = 1; j < 64; ++j) {
    swprog::JobParams p;
    p.n_workers = 8;
    p.pool_size = 512;
    p.multicast_group = j;
    if (!sw.admit_job(j, p)) break;
    ++admitted;
  }
  std::printf("  %d jobs admitted, %zu KiB used, %zu KiB free -> job %d REJECTED\n", admitted,
              sw.register_bytes() / 1024, sw.sram_free_bytes() / 1024, admitted);
  return 0;
}
