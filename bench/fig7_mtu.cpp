// Figure 7: TAT as tensor size grows (50..500 MB), comparing SwitchML's
// 180-byte packets with the "enhanced baseline" that emulates MTU-sized
// packets (366 elements, 1516 bytes — the switch aggregates the first 32 and
// forwards the rest, §5.5) and a Dedicated PS using MTU-sized packets.
//
// Shape to reproduce: SwitchML pays only a modest cost (the 28.9% vs 3.4%
// header overhead) for using packets an order of magnitude smaller; the MTU
// emulation improves TAT by ~31.6%.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;
  // Paper sweeps 50..500 MB; ATE rate is size-independent, so we sweep the
  // same shape at 1/10 scale by default to keep the runs short.
  const double size_scale = fast ? 0.02 : 0.1;

  MetricsSidecar sidecar("fig7_mtu_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fig7_mtu", argc, argv);

  std::printf("=== Figure 7: TAT vs tensor size (10 Gbps, 8 workers) ===\n");
  std::printf("(tensor sizes scaled by %.2fx; TAT scales linearly in size)\n\n", size_scale);
  Table table({"tensor", "SwitchML [ms]", "SwitchML(MTU) [ms]", "Dedicated PS(MTU) [ms]",
               "line rate [ms]", "line rate MTU [ms]"});

  for (std::int64_t mb : {50, 100, 250, 500}) {
    const auto elems =
        static_cast<std::uint64_t>(static_cast<double>(mb) * 1e6 / 4.0 * size_scale);
    BenchScale scale{elems, 1};
    const std::string tag = std::to_string(mb) + "mb.";
    const auto sml = measure_switchml(rate, workers, scale, 0, false, 0.0, 4, 0.0, false,
                                      &sidecar, tag + "switchml", &timeline_req);
    const auto sml_mtu = measure_switchml(rate, workers, scale, 0, /*mtu=*/true, 0.0, 4, 0.0,
                                          false, &sidecar, tag + "switchml-mtu", &timeline_req);
    const auto ps_mtu = measure_baseline(BaselineKind::DedicatedPsMtu, rate, workers, scale,
                                         0.0, &sidecar, tag + "dedicated-ps-mtu", &timeline_req);
    report.add(tag + "switchml.tat_ms", sml.tat_ms);
    report.add(tag + "switchml-mtu.tat_ms", sml_mtu.tat_ms);
    report.add(tag + "dedicated-ps-mtu.tat_ms", ps_mtu.tat_ms);
    const double line_ms =
        collectives::tat_seconds_at(
            collectives::switchml_ate_rate(rate, net::kDefaultElemsPerPacket), elems) * 1e3;
    const double line_mtu_ms =
        collectives::tat_seconds_at(
            collectives::switchml_ate_rate(rate, net::kMtuElemsPerPacket), elems) * 1e3;
    table.add_row({std::to_string(mb) + " MB", Table::num(sml.tat_ms),
                   Table::num(sml_mtu.tat_ms), Table::num(ps_mtu.tat_ms),
                   Table::num(line_ms), Table::num(line_mtu_ms)});
  }
  std::printf("%s", table.to_string().c_str());

  const double overhead_small = 1.0 - 128.0 / 180.0;
  const double overhead_mtu = 1.0 - 1464.0 / 1516.0;
  std::printf("(header overhead: %.1f%% at 180 B vs %.1f%% at MTU)\n", overhead_small * 100,
              overhead_mtu * 100);
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
