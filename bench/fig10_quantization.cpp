// Figure 10 (Appendix C): final accuracy as a function of the scaling factor
// f, swept over ~10 orders of magnitude, for data-parallel training whose
// gradient aggregation goes through the real quantize -> int32 wrapping sum
// -> dequantize pipeline (the switch ALU semantics).
//
// Shape to reproduce: a wide plateau where quantized training matches the
// unquantized baseline, with divergence when f is so large that aggregates
// overflow int32, and degradation when f is so small that gradients quantize
// to zero. The paper anchors f to the maximum gradient value observed in
// early iterations (29.24 for GoogLeNet); we do the same against our
// workload's profiled maximum.
#include <cstdio>

#include "bench_util.hpp"
#include "ml/trainer.hpp"
#include "quant/fixed_point.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const int iters = fast ? 150 : 600;

  sim::Rng data_rng = sim::Rng::stream(123, "fig10-data");
  const auto full = ml::make_blobs(fast ? 2000 : 6000, 32, 10, 3.0, 1.0, data_rng);
  auto [train, test] = ml::split(full, 0.8);

  ml::TrainerConfig tc;
  tc.n_workers = 8;
  tc.hidden_dim = 64;
  tc.batch_per_worker = 16;
  tc.lr = 0.1;

  // Unquantized baseline + gradient profiling (Appendix C methodology).
  ml::DataParallelTrainer base_trainer(train, test, tc);
  ml::ExactAggregator exact;
  const auto base = base_trainer.train(iters, exact);
  std::printf("=== Figure 10: accuracy vs scaling factor (8 workers, MLP on blobs) ===\n");
  std::printf("accuracy without quantization: %.1f%%; max |gradient| observed: %.4f\n",
              base.final_test_accuracy * 100, base.max_abs_gradient);
  const double f_limit = quant::max_safe_scaling_factor(8, base.max_abs_gradient);
  std::printf("Theorem 2 no-overflow limit: f <= %.3e\n\n", f_limit);

  // No fabric here (pure ML pipeline) — the report captures the seeded
  // training outcomes, which are deterministic.
  BenchReport report("fig10_quantization", argc, argv);
  report.add("baseline.accuracy_pct", base.final_test_accuracy * 100);
  report.add("baseline.max_abs_gradient", base.max_abs_gradient);
  report.add("theorem2_f_limit", f_limit);

  Table table({"scaling factor f", "top-1 accuracy", "vs Theorem-2 limit"});
  for (double rel = 1e-10; rel <= 2e3; rel *= 10.0) {
    const double f = f_limit * rel;
    ml::DataParallelTrainer trainer(train, test, tc);
    ml::QuantizedAggregator agg(f);
    const auto r = trainer.train(iters, agg);
    char buf[32], rbuf[32];
    std::snprintf(buf, sizeof buf, "%.3e", f);
    std::snprintf(rbuf, sizeof rbuf, "%.0ex", rel);
    table.add_row({buf, Table::num(r.final_test_accuracy * 100, 1) + "%", rbuf});
    report.add(std::string("rel-") + rbuf + ".accuracy_pct", r.final_test_accuracy * 100);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(expect a plateau at the baseline accuracy below the limit, collapse above it,\n"
              " and degradation for very small f where updates quantize to zero)\n");
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
