// Ablation (§6): hierarchical multi-rack composition. Compares a flat
// 16-worker rack against 2 racks x 8 workers with leaf switches aggregating
// before one root, and reports the uplink traffic reduction: every leaf
// sends ONE partial-aggregate stream upstream regardless of its worker
// count, which is what makes the composition bandwidth-optimal and tolerant
// of p:1 oversubscription.
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 1);

  std::printf("=== Ablation: hierarchical composition (§6) ===\n");
  Table table({"topology", "workers", "TAT [ms]", "ATE/s (x1e6)", "root-link packets"});

  {
    auto flat = measure_switchml(gbps(10), 16, scale);
    table.add_row({"flat (1 switch)", "16", Table::num(flat.tat_ms), mega(flat.ate_per_s), "-"});
  }
  for (int racks : {2, 4}) {
    core::HierarchyConfig cfg;
    cfg.racks = racks;
    cfg.workers_per_rack = 16 / racks;
    cfg.timing_only = true;
    cfg.nic = core::switchml_worker_nic_10g();
    core::HierarchicalCluster h(cfg);
    Summary tat_ms;
    for (int r = 0; r < scale.repetitions; ++r) {
      auto tats = h.reduce_timing(scale.tensor_elems);
      for (Time t : tats) tat_ms.add(to_msec(t));
    }
    const double ate = static_cast<double>(scale.tensor_elems) / (tat_ms.median() / 1e3);
    table.add_row({std::to_string(racks) + " racks x " + std::to_string(16 / racks),
                   "16", Table::num(tat_ms.median()), mega(ate),
                   std::to_string(h.leaf(0).counters().upstream_partials) + " per leaf"});
  }
  {
    // §6's H > 2 case: a 3-level tree (root -> 2 internal -> 4 racks x 4).
    core::TreeConfig cfg;
    cfg.levels = 3;
    cfg.branching = 2;
    cfg.workers_per_rack = 4;
    cfg.timing_only = true;
    cfg.nic = core::switchml_worker_nic_10g();
    cfg.pool_size = 128;
    core::TreeCluster tree(cfg);
    Summary tat_ms;
    for (int r = 0; r < scale.repetitions; ++r) {
      auto tats = tree.reduce_timing(scale.tensor_elems);
      for (Time t : tats) tat_ms.add(to_msec(t));
    }
    const double ate = static_cast<double>(scale.tensor_elems) / (tat_ms.median() / 1e3);
    table.add_row({"3-level tree (2x2x4)", "16", Table::num(tat_ms.median()), mega(ate),
                   std::to_string(tree.switch_at(1).counters().upstream_partials) +
                       " per subtree"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(each leaf forwards one 180-B packet per aggregated chunk upstream,\n"
              " independent of its worker count: d:1 bandwidth reduction at every level)\n");
  return 0;
}
