// Microbenchmark (google-benchmark): the worker-side numerical pipeline of
// §5.5 — float32 -> scale -> int32 -> htonl -> ntohl -> int32 -> float32 —
// and the float16 conversions, measured in elements/second on the real CPU.
// This substantiates the paper's claim that with vectorized conversion the
// type-conversion overhead is negligible against wire time (a 10 Gbps link
// moves only ~222M elements/s; one core converts billions).
#include <benchmark/benchmark.h>

#include <vector>

#include "quant/fixed_point.hpp"
#include "quant/float16.hpp"

namespace {

using namespace switchml;

void BM_QuantizeFloat32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.2345f);
  std::vector<std::int32_t> q(n);
  for (auto _ : state) {
    quant::quantize(x, 1e6, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantizeFloat32)->Arg(1 << 16)->Arg(1 << 20);

void BM_DequantizeInt32(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> q(n, 1234567);
  std::vector<float> x(n);
  for (auto _ : state) {
    quant::dequantize(q, 1e6, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DequantizeInt32)->Arg(1 << 20);

void BM_ByteSwap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> q(n, 0x12345678);
  for (auto _ : state) {
    quant::htonl_inplace(q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ByteSwap)->Arg(1 << 20);

void BM_FullWirePipeline(benchmark::State& state) {
  // The complete §5.5 path: float32-to-int32 -> htonl -> ntohl -> int32-to-float32.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.2345f);
  std::vector<std::int32_t> q(n);
  for (auto _ : state) {
    quant::quantize(x, 1e6, q);
    quant::htonl_inplace(q);
    quant::ntohl_inplace(q);
    quant::dequantize(q, 1e6, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullWirePipeline)->Arg(1 << 20);

void BM_FloatToHalf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.2345f);
  std::vector<quant::half> h(n);
  for (auto _ : state) {
    quant::float_to_half(x, h);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FloatToHalf)->Arg(1 << 20);

void BM_Fp16TableLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const quant::Fp16Table table(12);
  std::vector<quant::half> h(n, quant::float_to_half(1.25f));
  std::vector<std::int32_t> fixed(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) fixed[i] = table.to_fixed(h[i]);
    benchmark::DoNotOptimize(fixed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fp16TableLookup)->Arg(1 << 20);

} // namespace

BENCHMARK_MAIN();
