// Microbenchmark (google-benchmark): cost of sim::Simulation timer
// scheduling. Every in-flight SwitchML packet arms a retransmission timer
// and cancels it on the ACK path, so schedule_timer/cancel sit on the
// simulator's hottest loop. The slot-pool TimerHandle (a (slot, generation)
// index into the Simulation) replaced a per-timer shared_ptr<bool> control
// block, removing one heap allocation + atomic refcount per scheduled timer.
//
// The representative pattern is BM_ScheduleCancelFire: arm, cancel (the ACK
// arrived), then drain the queue — the common case where the timer never
// actually runs its callback.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.hpp"

namespace {

using namespace switchml;

// Arm a batch of timers, then drain the queue letting all of them fire.
void BM_ScheduleFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::Simulation s;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_timer(static_cast<Time>(i + 1), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleFire)->Arg(1 << 10)->Arg(1 << 16);

// Arm, cancel, drain: the retransmission-timer fast path (the ACK wins the
// race, so the queued event pops as a no-op and the slot recycles).
void BM_ScheduleCancelFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<sim::TimerHandle> handles(n);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::Simulation s;
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] = s.schedule_timer(static_cast<Time>(i + 1), [&fired] { ++fired; });
    }
    for (auto& h : handles) h.cancel();
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleCancelFire)->Arg(1 << 10)->Arg(1 << 16);

// Steady-state churn: one live timer re-armed from its own callback, so the
// slot pool stays at size 1 and every iteration recycles the same slot.
void BM_TimerChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation s;
    std::uint64_t remaining = n;
    std::function<void()> rearm = [&] {
      if (--remaining > 0) s.schedule_timer(1, rearm);
    };
    s.schedule_timer(1, rearm);
    s.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimerChurn)->Arg(1 << 16);

} // namespace

BENCHMARK_MAIN();
