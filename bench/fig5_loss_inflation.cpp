// Figure 5: TAT inflation under uniform random packet loss (0.01% / 0.1% /
// 1% on every link), SwitchML vs the Gloo and NCCL baselines; retransmission
// timeout 1 ms, 8 workers at 10 Gbps.
//
// Shape to reproduce: at 0.01% everybody is barely affected; at 0.1% and 1%
// SwitchML inflates modestly (selective per-slot retransmission) while the
// TCP-based baselines inflate by an order of magnitude (go-back-N stalls and
// RTO backoff on every lost segment).
#include <cstdio>

#include "bench_util.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 2);
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;

  std::printf("=== Figure 5: TAT inflation vs loss rate (10 Gbps, 8 workers) ===\n");
  MetricsSidecar sidecar("fig5_loss_inflation_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fig5_loss_inflation", argc, argv);
  const RateResult base_fixed_r =
      measure_switchml(rate, workers, scale, 0, false, 0.0, 4, 0.0, false, &sidecar,
                       "loss-0.00pct.switchml-fixed-rto");
  // The loss-free and 1%-loss adaptive-RTO runs also carry the per-chunk
  // span ledger: the report's attr.* block decomposes completion time into
  // exclusive components (DESIGN.md "Time attribution") and pins the
  // conservation invariant (max_residual_ns == 0) in the recorded baseline.
  RateResult base_adapt_r;
  {
    ScopedAttribution attrib;
    base_adapt_r = measure_switchml(rate, workers, scale, 0, false, 0.0, 4, 0.0, true, &sidecar,
                                    "loss-0.00pct.switchml-adaptive-rto");
    attrib.report(report, "loss-0.00pct.switchml-adaptive-rto");
  }
  const double base_fixed = base_fixed_r.tat_ms;
  const double base_adapt = base_adapt_r.tat_ms;
  const double base_gloo = measure_baseline(BaselineKind::GlooRing, rate, workers, scale).tat_ms;
  const double base_nccl = measure_baseline(BaselineKind::NcclRing, rate, workers, scale).tat_ms;
  report.add("loss-0.00pct.switchml-fixed-rto.tat_ms", base_fixed);
  report.add("loss-0.00pct.switchml-adaptive-rto.tat_ms", base_adapt);
  report.add("loss-0.00pct.gloo.tat_ms", base_gloo);
  report.add("loss-0.00pct.nccl.tat_ms", base_nccl);

  // Fig 5's companion tail view from the registry histograms. The RTT
  // columns are Karn-filtered clean exchanges, so loss barely moves them —
  // the inflation lives in the switch's slot dwell (claim -> complete),
  // which absorbs every RTO stall.
  Table tail({"loss rate", "p99 RTT fixed/adaptive [us]", "p99 slot dwell fixed [us]",
              "p99 slot dwell adaptive [us]"});
  auto tail_row = [&tail, &report](const std::string& pct, const std::string& tag,
                                   const RateResult& fixed, const RateResult& adapt) {
    tail.add_row({pct, Table::num(fixed.rtt_p99_us) + " / " + Table::num(adapt.rtt_p99_us),
                  Table::num(fixed.dwell_p99_us), Table::num(adapt.dwell_p99_us)});
    report.add(tag + "switchml-fixed-rto.rtt_p99_us", fixed.rtt_p99_us);
    report.add(tag + "switchml-adaptive-rto.rtt_p99_us", adapt.rtt_p99_us);
    report.add(tag + "switchml-fixed-rto.dwell_p99_us", fixed.dwell_p99_us);
    report.add(tag + "switchml-adaptive-rto.dwell_p99_us", adapt.dwell_p99_us);
  };
  tail_row("0.00%", "loss-0.00pct.", base_fixed_r, base_adapt_r);

  std::printf("loss-free TATs: SwitchML %s (fixed RTO) / %s (adaptive), Gloo %s, NCCL %s\n",
              format_duration(static_cast<Time>(base_fixed * 1e6)).c_str(),
              format_duration(static_cast<Time>(base_adapt * 1e6)).c_str(),
              format_duration(static_cast<Time>(base_gloo * 1e6)).c_str(),
              format_duration(static_cast<Time>(base_nccl * 1e6)).c_str());
  Table table({"loss rate", "SwitchML (1ms RTO)", "SwitchML (adaptive RTO)", "Gloo", "NCCL"});
  for (double loss : {0.0001, 0.001, 0.01}) {
    const std::string tag = "loss-" + Table::num(loss * 100, 2) + "pct.";
    const RateResult fixed_r =
        measure_switchml(rate, workers, scale, 0, false, loss, 4, 0.0, false, &sidecar,
                         tag + "switchml-fixed-rto", &timeline_req);
    RateResult adapt_r;
    {
      ScopedAttribution attrib;
      adapt_r = measure_switchml(rate, workers, scale, 0, false, loss, 4, 0.0, true, &sidecar,
                                 tag + "switchml-adaptive-rto", &timeline_req);
      if (loss == 0.01) {
        attrib.report(report, tag + "switchml-adaptive-rto");
        attrib.write_jsonl("fig5_attribution.jsonl");
        if (const attr::SpanLedger* l = attrib.ledger()) {
          const double tot = static_cast<double>(l->total_ns());
          std::printf("chunk-time attribution at 1%% loss (adaptive RTO, >=1%% shares): ");
          for (std::size_t c = 0; c < attr::kComponentCount; ++c) {
            const auto comp = static_cast<attr::Component>(c);
            const double share =
                tot > 0 ? 100.0 * static_cast<double>(l->total(comp)) / tot : 0.0;
            if (share >= 1.0) std::printf("%s %.0f%%  ", attr::to_string(comp), share);
          }
          std::printf("-> fig5_attribution.jsonl\n");
        }
      }
    }
    const double fixed = fixed_r.tat_ms;
    const double adapt = adapt_r.tat_ms;
    const double gloo = measure_baseline(BaselineKind::GlooRing, rate, workers, scale, loss,
                                         &sidecar, tag + "gloo", &timeline_req)
                            .tat_ms;
    const double nccl = measure_baseline(BaselineKind::NcclRing, rate, workers, scale, loss,
                                         &sidecar, tag + "nccl", &timeline_req)
                            .tat_ms;
    table.add_row({Table::num(loss * 100, 2) + "%", Table::num(fixed / base_fixed, 2) + "x",
                   Table::num(adapt / base_adapt, 2) + "x",
                   Table::num(gloo / base_gloo, 2) + "x",
                   Table::num(nccl / base_nccl, 2) + "x"});
    tail_row(Table::num(loss * 100, 2) + "%", tag, fixed_r, adapt_r);
    report.add(tag + "switchml-fixed-rto.tat_ms", fixed);
    report.add(tag + "switchml-adaptive-rto.tat_ms", adapt);
    report.add(tag + "gloo.tat_ms", gloo);
    report.add(tag + "nccl.tat_ms", nccl);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nSwitchML latency tails vs loss (registry histograms):\n%s",
              tail.to_string().c_str());
  std::printf(
      "(inflation normalized to each strategy's loss-free TAT. With the paper's literal\n"
      " 1 ms RTO, every lost packet stalls its slot for ~50 RTTs, dominating inflation in\n"
      " the simulator; the adaptive RTO of §6 retransmits after ~4 RTTs and reproduces\n"
      " the paper's reported inflation shape — modest for SwitchML, catastrophic for the\n"
      " TCP baselines once AIMD keeps their windows collapsed.)\n");
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
