// Ablation: why Algorithm 3 needs BOTH the seen bitmap and the shadow copy
// (§3.5). We disable each in turn and run a lossy data-mode aggregation:
//
//  * no seen bitmap  -> retransmitted duplicates are re-aggregated, silently
//    corrupting the sums (we count wrong elements);
//  * no shadow copy  -> a lost result packet can never be recovered, so the
//    aggregation deadlocks (we report completion within a deadline);
//  * full protocol   -> exact and complete under the same loss pattern.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/rng.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

struct Outcome {
  bool completed = false;
  std::size_t wrong_elems = 0;
  double tat_ms = 0;
};

Outcome run_case(bool ablate_seen, bool ablate_shadow, double loss, std::uint64_t elems) {
  core::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.pool_size = 16;
  cfg.loss_prob = loss;
  cfg.ablate_seen_bitmap = ablate_seen;
  cfg.ablate_shadow_copy = ablate_shadow;
  core::Cluster cluster(cfg);

  sim::Rng rng = sim::Rng::stream(77, "ablation");
  std::vector<std::vector<std::int32_t>> updates(4, std::vector<std::int32_t>(elems));
  std::vector<std::int32_t> expect(elems, 0);
  for (auto& u : updates)
    for (std::size_t i = 0; i < elems; ++i) {
      u[i] = static_cast<std::int32_t>(rng.uniform_int(-1'000'000, 1'000'000));
      expect[i] += u[i];
    }

  std::vector<std::vector<std::int32_t>> outputs(4, std::vector<std::int32_t>(elems, 0));
  int done = 0;
  const Time t0 = cluster.simulation().now();
  Time finish = 0;
  for (int w = 0; w < 4; ++w)
    cluster.worker(w).start_reduction(updates[static_cast<std::size_t>(w)],
                                      outputs[static_cast<std::size_t>(w)], [&] {
                                        if (++done == 4) finish = cluster.simulation().now();
                                      });
  // A broken protocol may retransmit forever; cap the run.
  cluster.simulation().run_until(t0 + sec(2));

  Outcome o;
  o.completed = done == 4;
  o.tat_ms = o.completed ? to_msec(finish - t0) : -1;
  if (o.completed)
    for (std::size_t i = 0; i < elems; ++i)
      if (outputs[0][i] != expect[i]) ++o.wrong_elems;
  return o;
}

} // namespace

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const std::uint64_t elems = fast ? 64 * 1024 : 256 * 1024;
  const double loss = 0.01;

  std::printf("=== Ablation: Algorithm 3's loss-recovery state (4 workers, 1%% loss) ===\n");
  Table table({"variant", "completed", "corrupted elements", "TAT [ms]"});
  auto report = [&](const char* name, Outcome o) {
    table.add_row({name, o.completed ? "yes" : "NO (deadlock)",
                   o.completed ? std::to_string(o.wrong_elems) : "-",
                   o.completed ? Table::num(o.tat_ms) : "-"});
  };
  report("full protocol", run_case(false, false, loss, elems));
  report("no seen bitmap", run_case(true, false, loss, elems));
  report("no shadow copy", run_case(false, true, loss, elems));
  std::printf("%s", table.to_string().c_str());
  return 0;
}
