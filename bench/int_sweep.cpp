// INT sweep: online fault localization from in-band telemetry, scored
// against the injected ground truth (DESIGN.md "In-band telemetry & fault
// localization").
//
// Each scenario builds a fresh rack fabric (8 workers, 10 Gbps, timing-only)
// with telemetry on the wire (int_mode = kModeOnWire) and ONE fault from the
// FaultPlan vocabulary; the fabric's FaultLocalizer watches the INT record
// stream and must name the faulty component:
//
//   control    no fault              -> no verdicts
//   straggler  worker 0's NIC 32x    -> straggler(worker-0)
//   flap       link 0 down 200-400us -> slow_link(worker-0 <-> switch)
//   burst      GE loss on link 0     -> congested_hop(worker-0 <-> switch)
//   restart    switch wipe at 500us  -> switch_restarted(switch, epoch 1)
//
// The sweep reports precision (no verdict names a healthy component), recall
// (every injected fault is named), and per-scenario time-to-detect. All
// values are sim-deterministic (kSimTol), so the recorded baseline pins
// 100% precision and recall. Per-hop latency/queue/drop tables go to the
// int_sweep_hops.jsonl sidecar (scripts/int_report.py renders them).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/int_telemetry.hpp"
#include "common/tracing.hpp"
#include "core/fault.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

using Kind = inttel::FaultLocalizer::Verdict::Kind;

struct Scenario {
  std::string name;
  core::FaultPlan plan;
  bool expects_verdict = false;
  Kind kind = Kind::kSlowLink;
  Time fault_at = 0; // activation time, for time-to-detect
};

const char* hop_kind_name(std::uint8_t kind) {
  switch (kind) {
    case inttel::HopKey::kSwitch: return "switch";
    case inttel::HopKey::kL2: return "l2";
    default: return "link";
  }
}

} // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 1);
  const bool fast = has_flag(argc, argv, "--fast");
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;

  if (!inttel::kCompiledIn) {
    std::printf("int_sweep: telemetry stack compiled out (SWITCHML_INT=0); nothing to do\n");
    return 0;
  }

  std::printf("=== INT sweep: fault localization from in-band telemetry "
              "(10 Gbps, %d workers, on-wire mode) ===\n",
              workers);
  MetricsSidecar sidecar("int_sweep_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("int_sweep", argc, argv);
  auto sink = std::make_unique<trace::TraceSink>(
      fast ? (1u << 16) : (1u << 20), trace_mask_from_args(argc, argv, trace::kCatFault));
  trace::TraceSink::Scope trace_scope(sink.get());
  std::ofstream hops_out("int_sweep_hops.jsonl");

  // Fault times sit inside even the --fast run (TAT ~1 ms at 256k elements).
  std::vector<Scenario> scenarios(5);
  scenarios[0].name = "control";
  scenarios[1].name = "straggler";
  scenarios[1].plan.stragglers.push_back({0, 32.0, 0, -1});
  scenarios[1].expects_verdict = true;
  scenarios[1].kind = Kind::kStraggler;
  scenarios[2].name = "flap";
  scenarios[2].plan.flaps.push_back({0, usec(200), usec(400)});
  scenarios[2].expects_verdict = true;
  scenarios[2].kind = Kind::kSlowLink;
  scenarios[2].fault_at = usec(200);
  scenarios[3].name = "burst";
  scenarios[3].plan.bursts.push_back({0, net::BurstLossConfig{0.002, 0.1, 0.0, 0.25}});
  scenarios[3].expects_verdict = true;
  scenarios[3].kind = Kind::kCongestedHop;
  scenarios[4].name = "restart";
  scenarios[4].plan.switch_restarts.push_back({0, usec(500)});
  scenarios[4].expects_verdict = true;
  scenarios[4].kind = Kind::kSwitchRestarted;
  scenarios[4].fault_at = usec(500);

  std::uint64_t total_verdicts = 0;
  std::uint64_t total_matched = 0;
  std::uint64_t total_expected = 0;
  std::uint64_t total_found = 0;

  Table table({"scenario", "injected fault", "verdicts", "localized as", "TTD"});
  for (const Scenario& sc : scenarios) {
    core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, workers);
    cfg.timing_only = true;
    cfg.int_mode = inttel::kModeOnWire;
    cfg.faults = sc.plan;
    core::Cluster cluster(cfg);
    ScopedTimeline scoped(&timeline_req, cluster.simulation(), cluster.metrics(), sc.name);
    const auto tats = cluster.reduce_timing(scale.tensor_elems);
    scoped.finish_and_write();

    Time tat_max = 0;
    for (Time t : tats) tat_max = std::max(tat_max, t);

    const std::uint32_t w0 = cluster.worker(0).id();
    const std::uint32_t sw = cluster.agg_switch().id();
    const std::uint32_t lo = std::min(w0, sw);
    const std::uint32_t hi = std::max(w0, sw);
    inttel::FaultLocalizer* loc = cluster.fabric().int_localizer();

    // A verdict matches the scenario's ground truth iff it names BOTH the
    // right fault class and the faulted component (fault on worker 0 / its
    // link / the switch in every non-control scenario).
    Time detected_at = -1;
    std::uint64_t matched = 0;
    for (const auto& v : loc->verdicts()) {
      bool ok = sc.expects_verdict && v.kind == sc.kind;
      if (ok) {
        switch (sc.kind) {
          case Kind::kStraggler: ok = v.a == w0; break;
          case Kind::kSlowLink:
          case Kind::kCongestedHop: ok = v.a == lo && v.b == hi; break;
          case Kind::kSwitchRestarted: ok = v.a == sw; break;
        }
      }
      if (ok) {
        ++matched;
        if (detected_at < 0) detected_at = v.at;
      }
      hops_out << "{\"scenario\":\"" << sc.name << "\",\"record\":\"verdict\",\"kind\":\""
               << inttel::FaultLocalizer::to_string(v.kind) << "\",\"subject\":\""
               << loc->subject(v) << "\",\"detail\":" << v.detail << ",\"at_ns\":" << v.at
               << ",\"matched\":" << (ok ? "true" : "false") << "}\n";
    }
    const std::uint64_t n_verdicts = loc->verdicts().size();
    total_verdicts += n_verdicts;
    total_matched += matched;
    if (sc.expects_verdict) {
      ++total_expected;
      if (matched > 0) ++total_found;
    }

    // Per-hop tables, one line per (worker, hop): the raw material for
    // scripts/int_report.py.
    for (int i = 0; i < workers; ++i) {
      const inttel::IntCollector* col = cluster.worker(i).int_collector();
      if (col == nullptr) continue;
      for (const auto& h : col->hop_stats()) {
        hops_out << "{\"scenario\":\"" << sc.name << "\",\"record\":\"hop\",\"worker\":\""
                 << cluster.worker(i).name() << "\",\"hop\":\""
                 << (h.name.empty() ? "discovered" : h.name) << "\",\"kind\":\""
                 << hop_kind_name(h.key.kind) << "\",\"hop_id\":" << h.key.hop_id
                 << ",\"next_hop\":" << h.key.next_hop << ",\"samples\":" << h.samples
                 << ",\"latency_p50_ns\":" << h.latency_p50
                 << ",\"latency_p99_ns\":" << h.latency_p99 << ",\"queue_bytes\":" << h.queue_bytes
                 << ",\"queue_pkts\":" << h.queue_pkts << ",\"drops\":" << h.drops << "}\n";
      }
    }
    sidecar.record(sc.name, cluster.metrics());

    const double ttd_us = detected_at >= 0 ? to_usec(detected_at - sc.fault_at) : -1.0;
    std::string localized = "-";
    if (n_verdicts > 0)
      localized = std::string(inttel::FaultLocalizer::to_string(loc->verdicts().front().kind)) +
                  "(" + loc->subject(loc->verdicts().front()) + ")";
    table.add_row({sc.name,
                   sc.expects_verdict ? inttel::FaultLocalizer::to_string(sc.kind) : "none",
                   Table::num(static_cast<double>(n_verdicts), 0), localized,
                   detected_at >= 0 ? format_duration(detected_at - sc.fault_at) : "-"});
    report.add(sc.name + ".verdicts", static_cast<double>(n_verdicts));
    report.add(sc.name + ".matched", static_cast<double>(matched));
    report.add(sc.name + ".tat_max_ms", to_msec(tat_max));
    if (sc.expects_verdict) report.add(sc.name + ".ttd_us", ttd_us);
  }

  const double precision =
      total_verdicts > 0 ? static_cast<double>(total_matched) / static_cast<double>(total_verdicts)
                         : 1.0;
  const double recall =
      total_expected > 0 ? static_cast<double>(total_found) / static_cast<double>(total_expected)
                         : 1.0;
  std::printf("%s\n", table.to_string().c_str());
  std::printf("localization precision %.3f, recall %.3f over %llu verdicts / %llu faults\n",
              precision, recall, static_cast<unsigned long long>(total_verdicts),
              static_cast<unsigned long long>(total_expected));
  report.add("precision", precision);
  report.add("recall", recall);

  const std::string trace_path = "int_sweep_trace.json";
  sink->write_chrome_json(trace_path);
  std::printf("verdict trace (Perfetto / chrome://tracing): %s (%zu events)\n", trace_path.c_str(),
              sink->events().size());
  std::printf("per-hop tables: int_sweep_hops.jsonl (render: scripts/int_report.py)\n");
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
