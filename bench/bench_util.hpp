// Shared helpers for the per-figure benchmark harnesses: strategy runners
// that measure ATE/s and TAT on the simulated fabric, plus tiny CLI handling
// (--fast shrinks tensors so the whole suite smoke-runs in seconds).
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "collectives/baseline_cluster.hpp"
#include "collectives/bounds.hpp"
#include "collectives/halving_doubling.hpp"
#include "collectives/ps.hpp"
#include "collectives/ring.hpp"
#include "collectives/streaming_ps.hpp"
#include "common/attribution.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timeline.hpp"
#include "common/tracing.hpp"
#include "core/allreduce.hpp"
#include "core/cluster.hpp"
#include "core/profiles.hpp"
#include "framework/training_sim.hpp"

namespace switchml::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

// Value of "--flag value" or "--flag=value"; empty when absent.
inline std::string arg_value(int argc, char** argv, const char* flag) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0)
      return i + 1 < argc ? argv[i + 1] : std::string{};
    if (std::strncmp(argv[i], flag, flag_len) == 0 && argv[i][flag_len] == '=')
      return argv[i] + flag_len + 1;
  }
  return {};
}

// Runtime trace-category mask from `--trace-mask NAMES` (comma-separated
// category names — "switch,worker,link,transport,fault,flow" — or "all");
// `fallback` applies when the flag is absent. An unknown name aborts with the
// parser's message listing the valid categories, so a typo can't silently
// record the wrong (or no) events.
inline unsigned trace_mask_from_args(int argc, char** argv, unsigned fallback = trace::kCatAll) {
  const std::string names = arg_value(argc, argv, "--trace-mask");
  if (names.empty()) return fallback;
  try {
    return trace::parse_mask(names);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "--trace-mask: %s\n", e.what());
    std::exit(2);
  }
}

// Shared handling for the benches' `--timeline-out PREFIX` flag: each labeled
// run writes a TimelineRecorder sidecar to "<PREFIX>_<label>.jsonl" (or .csv
// when PREFIX ends in ".csv"). Empty prefix disables recording entirely.
struct TimelineRequest {
  std::string prefix;
  Time period = msec(1);

  static TimelineRequest from_args(int argc, char** argv, Time period = msec(1)) {
    TimelineRequest req{arg_value(argc, argv, "--timeline-out"), period};
    const std::string us = arg_value(argc, argv, "--timeline-period-us");
    if (!us.empty()) {
      long long parsed = 0;
      try {
        std::size_t consumed = 0;
        parsed = std::stoll(us, &consumed);
        if (consumed != us.size()) parsed = 0;
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed <= 0) {
        std::fprintf(stderr,
                     "--timeline-period-us: '%s' is not a positive integer microsecond "
                     "period (a period of 0 or less would never sample)\n",
                     us.c_str());
        std::exit(2);
      }
      req.period = usec(parsed);
    }
    return req;
  }
  [[nodiscard]] bool enabled() const { return !prefix.empty(); }
};

inline std::string sanitize_label(std::string label) {
  for (char& c : label)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return label;
}

inline std::string timeline_path(const TimelineRequest& req, const std::string& label) {
  const bool csv = req.prefix.size() > 4 && req.prefix.ends_with(".csv");
  const std::string base = csv ? req.prefix.substr(0, req.prefix.size() - 4) : req.prefix;
  return base + (label.empty() ? "" : "_" + sanitize_label(label)) + (csv ? ".csv" : ".jsonl");
}

inline void write_timeline(const TimelineRequest& req, const TimelineRecorder& timeline,
                           const std::string& label) {
  const std::string path = timeline_path(req, label);
  const bool csv = path.ends_with(".csv");
  timeline.write(path, csv ? TimelineRecorder::Format::kCsv : TimelineRecorder::Format::kJsonl);
}

// Collects one labeled MetricsRegistry snapshot per measured configuration
// and writes them as a JSON telemetry sidecar next to the bench's stdout
// table: {"<label>": <MetricsRegistry::Snapshot::json()>, ...}. Pass a
// pointer into the measure_* helpers to capture each run's counters.
class MetricsSidecar {
public:
  explicit MetricsSidecar(std::string path) : path_(std::move(path)) {}

  void record(const std::string& label, const MetricsRegistry& registry) {
    runs_.emplace_back(label, registry.snapshot().json());
  }

  // Returns the path written, empty on I/O failure.
  std::string write() const {
    std::ofstream out(path_);
    if (!out) return {};
    out << "{";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "  \"" << runs_[i].first << "\": " << runs_[i].second;
    }
    out << "\n}\n";
    return out ? path_ : std::string{};
  }

private:
  std::string path_;
  std::vector<std::pair<std::string, std::string>> runs_;
};

// --- machine-readable bench reports ------------------------------------------

// Schema-versioned JSON result emitted by every measured bench next to its
// stdout table, consumed by scripts/bench_baseline.sh / bench_compare.py.
// Each scalar carries its own relative tolerance so the compare tool is
// strict about sim-deterministic numbers (TATs, ATE/s, simulated-clock
// percentiles — bit-identical across runs) and lenient about host-measured
// ones (calibrated per-byte conversion costs). Wall-clock facts belong in
// info(), which is recorded for humans but never compared.
class BenchReport {
public:
  static constexpr int kSchemaVersion = 1;
  static constexpr double kSimTol = 1e-9;   // deterministic simulated values
  static constexpr double kLooseTol = 0.25; // host-measured calibrations

  // Report path: --report-out PATH when given, else "<bench>_report.json".
  BenchReport(std::string bench, int argc, char** argv)
      : bench_(std::move(bench)),
        mode_(has_flag(argc, argv, "--fast") ? "fast" : "full"),
        path_(arg_value(argc, argv, "--report-out")) {
    if (path_.empty()) path_ = bench_ + "_report.json";
  }

  void add(const std::string& name, double value, double rel_tol = kSimTol) {
    metrics_.emplace_back(name, Metric{value, rel_tol});
  }
  void info(const std::string& key, const std::string& value) {
    info_.emplace_back(key, value);
  }

  [[nodiscard]] std::string json() const {
    std::string out = "{\n  \"schema_version\": " + std::to_string(kSchemaVersion) +
                      ",\n  \"bench\": " + json_quote(bench_) +
                      ",\n  \"mode\": " + json_quote(mode_) + ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "{\"value\": %.17g, \"rel_tol\": %.3g}",
                    metrics_[i].second.value, metrics_[i].second.rel_tol);
      out += (i == 0 ? "\n" : ",\n");
      out += "    " + json_quote(metrics_[i].first) + ": " + buf;
    }
    out += "\n  },\n  \"info\": {";
    for (std::size_t i = 0; i < info_.size(); ++i) {
      out += (i == 0 ? "\n" : ",\n");
      out += "    " + json_quote(info_[i].first) + ": " + json_quote(info_[i].second);
    }
    out += "\n  }\n}\n";
    return out;
  }

  // Returns the path written, empty on I/O failure.
  std::string write() const {
    std::ofstream out(path_);
    if (!out) return {};
    out << json();
    return out ? path_ : std::string{};
  }

private:
  struct Metric {
    double value;
    double rel_tol;
  };
  std::string bench_, mode_, path_;
  std::vector<std::pair<std::string, Metric>> metrics_;
  std::vector<std::pair<std::string, std::string>> info_;
};

// --- critical-path time attribution ------------------------------------------

// Installs a SpanLedger over one measured run so every chunk's completion time
// is decomposed into the attribution components (DESIGN.md "Time
// attribution"). Construct BEFORE the cluster under test: the fabric registers
// its attr.* counters only when a ledger is ambient at construction, which
// keeps untouched runs' metric registries bit-identical. No-op (and
// ledger() == nullptr) when SWITCHML_ATTRIBUTION=0 compiles the ledger out.
class ScopedAttribution {
public:
  explicit ScopedAttribution(std::size_t record_capacity = 1u << 16) {
    if constexpr (attr::kCompiledIn) {
      ledger_ = std::make_unique<attr::SpanLedger>(record_capacity);
      scope_ = std::make_unique<attr::SpanLedger::Scope>(ledger_.get());
    }
  }

  [[nodiscard]] attr::SpanLedger* ledger() { return ledger_.get(); }

  // Folds the run's component totals into the report as sim-deterministic
  // metrics: "<label>.attr.<component>_ns" for all ten components, the
  // chunk count, and the conservation guard (max_residual_ns, exactly 0 —
  // the components partition each chunk's [open, close] span by
  // construction, and the recorded baselines pin that invariant).
  void report(BenchReport& report, const std::string& label) const {
    if (!ledger_) return;
    const std::string prefix = (label.empty() ? "" : label + ".") + "attr.";
    for (std::size_t c = 0; c < attr::kComponentCount; ++c) {
      const auto comp = static_cast<attr::Component>(c);
      report.add(prefix + attr::to_string(comp) + "_ns",
                 static_cast<double>(ledger_->total(comp)));
    }
    report.add(prefix + "chunks_closed", static_cast<double>(ledger_->chunks_closed()));
    report.add(prefix + "max_residual_ns", static_cast<double>(ledger_->max_residual_ns()));
  }

  // Writes the per-chunk span records (one JSON object per line) for the
  // offline extractor, scripts/critical_path.py.
  void write_jsonl(const std::string& path) const {
    if (ledger_ && !path.empty()) ledger_->write_jsonl(path);
  }

private:
  std::unique_ptr<attr::SpanLedger> ledger_;
  std::unique_ptr<attr::SpanLedger::Scope> scope_;
};

// Merges every registered histogram whose name ends in `suffix` (e.g.
// ".rtt_ns" across all workers or transport hosts) into one distribution.
// Empty result when nothing matches or histograms are compiled out.
inline Histogram merged_histogram(const MetricsRegistry& registry, std::string_view suffix) {
  Histogram merged;
  for (const auto& [name, h] : registry.histograms())
    if (std::string_view(name).ends_with(suffix)) merged.merge(*h);
  return merged;
}

// Tensor sizes are scaled down from the paper's 100 MB default: ATE/s is
// size-independent (§5.3, verified by tests), and smaller tensors keep the
// discrete-event runs fast.
struct BenchScale {
  std::uint64_t tensor_elems; // per measured aggregation
  int repetitions;
  static BenchScale from_args(int argc, char** argv,
                              std::uint64_t full_elems = 4'000'000, int full_reps = 3) {
    if (has_flag(argc, argv, "--fast")) return {256 * 1024, 1};
    return {full_elems, full_reps};
  }
};

// --- SwitchML ---------------------------------------------------------------

struct RateResult {
  double ate_per_s = 0.0;  // aggregated tensor elements per second
  double tat_ms = 0.0;     // median TAT per aggregation
  double rtt_us = 0.0;     // median per-packet RTT (SwitchML only)
  // Tail/violin statistics derived from the registry's latency histograms
  // (0 when the protocol records none, or histograms are compiled out):
  double rtt_p99_us = 0.0;   // p99 per-packet RTT, merged across hosts
  double dwell_p99_us = 0.0; // p99 switch slot dwell (claim -> complete)
  double tat_p50_ms = 0.0;   // per-worker tensor-completion violin (fig 4)
  double tat_min_ms = 0.0;
  double tat_max_ms = 0.0;
};

// Fills RateResult's histogram-derived fields from the cluster registry.
// Both the SwitchML workers ("worker-N.rtt_ns") and the reliable-transport
// hosts ("hN.transport.rtt_ns") match the ".rtt_ns" suffix. Note the RTT
// samples are Karn-filtered (retransmitted slots excluded), so loss barely
// moves them; RTO stalls show up in the switch's slot-dwell histogram
// (".slot_dwell_ns") instead. Tensor completion spans only exist on SwitchML
// workers (".completion_ns").
inline void fill_tail_stats(RateResult& out, const MetricsRegistry& registry) {
  const Histogram rtts = merged_histogram(registry, ".rtt_ns");
  if (!rtts.empty()) out.rtt_p99_us = static_cast<double>(rtts.percentile(99)) / 1e3;
  const Histogram dwell = merged_histogram(registry, ".slot_dwell_ns");
  if (!dwell.empty()) out.dwell_p99_us = static_cast<double>(dwell.percentile(99)) / 1e3;
  const Histogram comps = merged_histogram(registry, ".completion_ns");
  if (!comps.empty()) {
    out.tat_p50_ms = static_cast<double>(comps.percentile(50)) / 1e6;
    out.tat_min_ms = static_cast<double>(comps.min()) / 1e6;
    out.tat_max_ms = static_cast<double>(comps.max()) / 1e6;
  }
}

// Arms a TimelineRecorder over a measured run when `req` asks for one; the
// measure_* helpers call start()/finish_and_write() around their rep loops.
class ScopedTimeline {
public:
  ScopedTimeline(const TimelineRequest* req, sim::Simulation& sim, MetricsRegistry& registry,
                 std::string label)
      : req_(req), label_(std::move(label)) {
    if (req_ == nullptr || !req_->enabled()) return;
    TimelineRecorder::Config tc;
    tc.period = req_->period;
    recorder_ = std::make_unique<TimelineRecorder>(sim, registry, tc);
    recorder_->start();
  }

  void finish_and_write() {
    if (!recorder_) return;
    recorder_->finish();
    write_timeline(*req_, *recorder_, label_);
    recorder_.reset();
  }

private:
  const TimelineRequest* req_;
  std::string label_;
  std::unique_ptr<TimelineRecorder> recorder_;
};

inline RateResult measure_switchml(BitsPerSecond rate, int workers, const BenchScale& scale,
                                   std::uint32_t pool_size = 0, bool mtu = false,
                                   double loss = 0.0, std::uint8_t wire_elem_bytes = 4,
                                   double extra_per_byte_ns = 0.0, bool adaptive_rto = false,
                                   MetricsSidecar* sidecar = nullptr,
                                   const std::string& label = {},
                                   const TimelineRequest* timeline = nullptr) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, workers);
  cfg.timing_only = true;
  if (pool_size != 0) cfg.pool_size = pool_size;
  cfg.loss_prob = loss;
  cfg.wire_elem_bytes = wire_elem_bytes;
  cfg.adaptive_rto = adaptive_rto;
  // Extra per-byte CPU work (e.g. the fig8 scale+convert pipeline) rides the
  // per-packet processing loop, so it is charged to the NIC cores.
  cfg.nic.per_byte_tx += extra_per_byte_ns;
  cfg.nic.per_byte_rx += extra_per_byte_ns;
  if (mtu) {
    cfg.elems_per_packet = net::kMtuElemsPerPacket;
    cfg.mtu_emulation = true;
  }
  core::Cluster cluster(cfg);
  ScopedTimeline scoped(timeline, cluster.simulation(), cluster.metrics(), label);

  Summary tat_ms;
  for (int r = 0; r < scale.repetitions; ++r) {
    auto tats = cluster.reduce_timing(scale.tensor_elems);
    for (Time t : tats) tat_ms.add(to_msec(t));
  }
  scoped.finish_and_write();
  RateResult out;
  out.tat_ms = tat_ms.median();
  out.ate_per_s = static_cast<double>(scale.tensor_elems) / (out.tat_ms / 1e3);
  const auto& rtt = cluster.worker(0).rtt();
  if (!rtt.empty()) out.rtt_us = rtt.median();
  fill_tail_stats(out, cluster.metrics());
  if (sidecar != nullptr) sidecar->record(label, cluster.metrics());
  return out;
}

// --- baselines ---------------------------------------------------------------

enum class BaselineKind { GlooRing, NcclRing, GlooRdmaRing, HalvingDoubling,
                          DedicatedPs, ColocatedPs, DedicatedPsMtu };

inline const char* baseline_name(BaselineKind k) {
  switch (k) {
    case BaselineKind::GlooRing: return "Gloo";
    case BaselineKind::NcclRing: return "NCCL";
    case BaselineKind::GlooRdmaRing: return "Gloo-RDMA";
    case BaselineKind::HalvingDoubling: return "HalvDoub";
    case BaselineKind::DedicatedPs: return "Dedicated PS";
    case BaselineKind::ColocatedPs: return "Colocated PS";
    case BaselineKind::DedicatedPsMtu: return "Dedicated PS (MTU)";
  }
  return "?";
}

// The PS baselines run the paper's DPDK streaming program (Algorithm 1 in
// host software, SwitchML packet format), so they use the SwitchML worker
// protocol, not the bulk reliable transport.
inline RateResult measure_streaming_ps(BaselineKind kind, BitsPerSecond rate, int workers,
                                       const BenchScale& scale, double loss = 0.0,
                                       MetricsSidecar* sidecar = nullptr,
                                       const std::string& label = {},
                                       const TimelineRequest* timeline = nullptr) {
  collectives::StreamingPsConfig cfg;
  cfg.n_workers = workers;
  cfg.placement = kind == BaselineKind::ColocatedPs
                      ? collectives::StreamingPsPlacement::Colocated
                      : collectives::StreamingPsPlacement::Dedicated;
  cfg.link_rate = rate;
  cfg.loss_prob = loss;
  cfg.nic = core::ps_host_nic(rate);
  cfg.pool_size = rate >= gbps(100) ? 512 : 128;
  cfg.timing_only = true;
  if (kind == BaselineKind::DedicatedPsMtu) cfg.elems_per_packet = net::kMtuElemsPerPacket;

  collectives::StreamingPsCluster cluster(cfg);
  ScopedTimeline scoped(timeline, cluster.simulation(), cluster.metrics(), label);
  Summary tat_ms;
  for (int r = 0; r < scale.repetitions; ++r) {
    auto tats = cluster.reduce_timing(scale.tensor_elems);
    for (Time t : tats) tat_ms.add(to_msec(t));
  }
  scoped.finish_and_write();
  RateResult out;
  out.tat_ms = tat_ms.median();
  out.ate_per_s = static_cast<double>(scale.tensor_elems) / (out.tat_ms / 1e3);
  fill_tail_stats(out, cluster.metrics());
  if (sidecar != nullptr) sidecar->record(label, cluster.metrics());
  return out;
}

inline RateResult measure_baseline(BaselineKind kind, BitsPerSecond rate, int workers,
                                   const BenchScale& scale, double loss = 0.0,
                                   MetricsSidecar* sidecar = nullptr,
                                   const std::string& label = {},
                                   const TimelineRequest* timeline = nullptr) {
  if (kind == BaselineKind::DedicatedPs || kind == BaselineKind::ColocatedPs ||
      kind == BaselineKind::DedicatedPsMtu)
    return measure_streaming_ps(kind, rate, workers, scale, loss, sidecar, label, timeline);

  collectives::BaselineClusterConfig cfg;
  cfg.link_rate = rate;
  cfg.loss_prob = loss;

  net::TransportProfile transport;
  switch (kind) {
    case BaselineKind::GlooRing:
    case BaselineKind::HalvingDoubling: {
      auto p = core::gloo_tcp(rate);
      cfg.nic = p.nic;
      transport = p.transport;
      cfg.n_hosts = workers;
      break;
    }
    case BaselineKind::NcclRing: {
      auto p = core::nccl_tcp(rate);
      cfg.nic = p.nic;
      transport = p.transport;
      cfg.n_hosts = workers;
      break;
    }
    case BaselineKind::GlooRdmaRing: {
      auto p = core::gloo_rdma(rate);
      cfg.nic = p.nic;
      transport = p.transport;
      cfg.n_hosts = workers;
      break;
    }
    case BaselineKind::DedicatedPs:
    case BaselineKind::DedicatedPsMtu:
      cfg.nic = core::ps_host_nic(rate);
      transport = kind == BaselineKind::DedicatedPsMtu ? core::ps_transport_mtu()
                                                       : core::ps_transport_small();
      cfg.n_hosts = 2 * workers;
      break;
    case BaselineKind::ColocatedPs:
      cfg.nic = core::ps_host_nic(rate);
      transport = core::ps_transport_small();
      cfg.n_hosts = workers;
      break;
  }

  collectives::BaselineCluster cluster(cfg);
  ScopedTimeline scoped(timeline, cluster.simulation(), cluster.metrics(), label);
  const std::int64_t bytes = static_cast<std::int64_t>(scale.tensor_elems) * 4;

  Summary tat_ms;
  for (int r = 0; r < scale.repetitions; ++r) {
    Time t = 0;
    switch (kind) {
      case BaselineKind::GlooRing:
      case BaselineKind::NcclRing:
      case BaselineKind::GlooRdmaRing: {
        collectives::RingAllReduce ring(cluster, transport);
        t = ring.run(bytes);
        break;
      }
      case BaselineKind::HalvingDoubling: {
        collectives::HalvingDoublingAllReduce hd(cluster, transport);
        t = hd.run(bytes);
        break;
      }
      case BaselineKind::DedicatedPs:
      case BaselineKind::DedicatedPsMtu: {
        collectives::ParameterServerAllReduce ps(cluster, workers,
                                                 collectives::PsPlacement::Dedicated, transport);
        t = ps.run(bytes);
        break;
      }
      case BaselineKind::ColocatedPs: {
        collectives::ParameterServerAllReduce ps(cluster, workers,
                                                 collectives::PsPlacement::Colocated, transport);
        t = ps.run(bytes);
        break;
      }
    }
    tat_ms.add(to_msec(t));
  }
  scoped.finish_and_write();
  RateResult out;
  out.tat_ms = tat_ms.median();
  out.ate_per_s = static_cast<double>(scale.tensor_elems) / (out.tat_ms / 1e3);
  fill_tail_stats(out, cluster.metrics());
  if (sidecar != nullptr) sidecar->record(label, cluster.metrics());
  return out;
}

// --- framework training sims -------------------------------------------------

// Routes a TrainingSimConfig's observability hooks into the shared bench
// plumbing: one sidecar snapshot per labeled run, plus a timeline sidecar
// when --timeline-out asked for one (fig3/table1 run the framework sims
// instead of the measure_* helpers).
inline void attach_sim_telemetry(framework::TrainingSimConfig& cfg, std::string label,
                                 MetricsSidecar* sidecar, const TimelineRequest* timeline) {
  if (timeline != nullptr && timeline->enabled()) {
    cfg.timeline_path = timeline_path(*timeline, label);
    cfg.timeline_period = timeline->period;
  }
  if (sidecar != nullptr)
    cfg.on_metrics = [sidecar, label = std::move(label)](const MetricsRegistry& m) {
      sidecar->record(label, m);
    };
}

inline std::string mega(double v) { return Table::num(v / 1e6, 1); }

} // namespace switchml::bench
