// Fault sweep: TAT inflation under the FaultInjector's four fault classes,
// on the rack fabric (8 workers, 10 Gbps) plus one hierarchy failover point.
//
//   1. Stragglers: one worker's NIC slowed 2x/4x/8x. SwitchML is
//      self-clocked (§6), so everyone drags to the straggler's pace but
//      inflation stays bounded by the slowdown factor itself.
//   2. Link flaps: one worker's link cycles down at 5/10/20% duty. Every
//      down window costs ~1 RTO of stall for the packets it ate, so
//      inflation tracks duty cycle times the RTO/period ratio — bounded,
//      never a livelock.
//   3. Burst loss: Gilbert-Elliott bursts vs a Bernoulli process matched to
//      the same average rate. Bursts stall many slots of one worker at
//      once, so the same average loss costs more than independent drops.
//   4. Failover: a leaf switch of a 2-rack hierarchy restarts mid-reduction
//      (pool + bitmaps + shadow copies wiped); workers re-drive the wiped
//      slots via RTO retransmission.
//
// Each faulted run builds a fresh fabric: FaultPlan times are absolute sim
// time, so one reduction per fabric keeps plans meaningful. All reported
// values are sim-deterministic (kSimTol).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/tracing.hpp"
#include "core/fault.hpp"

using namespace switchml;
using namespace switchml::bench;

namespace {

struct FaultResult {
  RateResult rate;
  double tat_max_ms = 0.0; // slowest worker (inflation is about the laggard)
  std::uint64_t flaps_applied = 0;
  std::uint64_t straggler_windows = 0;
  std::uint64_t restarts_applied = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t burst_entries = 0;
};

// One reduction on a fresh rack fabric with `plan` injected.
FaultResult measure_faulted(BitsPerSecond rate, int workers, std::uint64_t elems,
                            const core::FaultPlan& plan, MetricsSidecar* sidecar,
                            const std::string& label, const TimelineRequest* timeline) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, workers);
  cfg.timing_only = true;
  cfg.faults = plan;
  core::Cluster cluster(cfg);
  ScopedTimeline scoped(timeline, cluster.simulation(), cluster.metrics(), label);

  const auto tats = cluster.reduce_timing(elems);
  scoped.finish_and_write();

  FaultResult out;
  Summary tat_ms;
  Time max_tat = 0;
  for (Time t : tats) {
    tat_ms.add(to_msec(t));
    max_tat = std::max(max_tat, t);
  }
  out.rate.tat_ms = tat_ms.median();
  out.tat_max_ms = to_msec(max_tat);
  out.rate.ate_per_s = static_cast<double>(elems) / (out.rate.tat_ms / 1e3);
  fill_tail_stats(out.rate, cluster.metrics());
  if (core::FaultInjector* inj = cluster.fabric().fault_injector()) {
    out.flaps_applied = inj->counters().flaps_applied;
    out.straggler_windows = inj->counters().straggler_windows;
    out.restarts_applied = inj->counters().restarts_applied;
  }
  for (int i = 0; i < workers; ++i) {
    for (const net::Node* end :
         {static_cast<const net::Node*>(&cluster.worker(i)),
          static_cast<const net::Node*>(&cluster.agg_switch())}) {
      const auto& c = cluster.link(i).counters_from(*end);
      out.dropped_down += c.dropped_down;
      out.dropped_burst += c.dropped_burst;
      out.burst_entries += c.burst_entries;
    }
  }
  if (sidecar != nullptr) sidecar->record(label, cluster.metrics());
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const BenchScale scale = BenchScale::from_args(argc, argv, 2'000'000, 1);
  const bool fast = has_flag(argc, argv, "--fast");
  const BitsPerSecond rate = gbps(10);
  const int workers = 8;

  std::printf("=== Fault sweep: TAT inflation under injected faults (10 Gbps, %d workers) ===\n",
              workers);
  MetricsSidecar sidecar("fault_sweep_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fault_sweep", argc, argv);

  // Perfetto export of every fault event across all runs. The default runtime
  // mask keeps only kCatFault (link_down/up, straggler_on/off, burst_begin,
  // switch_restart): with all categories on, regular traffic would fill the
  // buffer long before the later fault edges fire. `--trace-mask NAMES`
  // overrides it (e.g. --trace-mask fault,flow to add per-chunk flow arrows).
  auto sink = std::make_unique<trace::TraceSink>(
      fast ? (1u << 16) : (1u << 20), trace_mask_from_args(argc, argv, trace::kCatFault));
  trace::TraceSink::Scope trace_scope(sink.get());

  // The clean and Gilbert-Elliott runs carry the per-chunk span ledger; the
  // report's attr.* blocks decompose completion time (DESIGN.md "Time
  // attribution") and pin max_residual_ns == 0 in the recorded baseline.
  FaultResult clean;
  {
    ScopedAttribution attrib;
    clean = measure_faulted(rate, workers, scale.tensor_elems, {}, &sidecar,
                            "clean", &timeline_req);
    attrib.report(report, "clean");
  }
  report.add("clean.tat_ms", clean.rate.tat_ms);
  report.add("clean.tat_max_ms", clean.tat_max_ms);
  std::printf("clean TAT: %s (max %s)\n\n",
              format_duration(static_cast<Time>(clean.rate.tat_ms * 1e6)).c_str(),
              format_duration(static_cast<Time>(clean.tat_max_ms * 1e6)).c_str());

  // --- 1. straggler severity sweep -----------------------------------------
  // The 10G NIC profile leaves the 4 cores ~8x headroom over the wire
  // (36 ns/packet/direction vs a 576 ns per-core packet interval), so
  // inflation has a knee at 8x and grows ~f/8 past it — the fabric absorbs
  // moderate stragglers entirely.
  Table stragglers({"straggler", "TAT (max)", "inflation", "min/max TAT"});
  for (double factor : {4.0, 16.0, 64.0}) {
    core::FaultPlan plan;
    plan.stragglers.push_back({0, factor, 0, -1});
    const std::string tag = "straggler-" + Table::num(factor, 0) + "x";
    const FaultResult r = measure_faulted(rate, workers, scale.tensor_elems, plan, &sidecar,
                                          tag, &timeline_req);
    const double inflation = r.tat_max_ms / clean.tat_max_ms;
    // Self-clocking: the fast workers finish within ~an RTT of the laggard.
    const double spread = r.rate.tat_p50_ms > 0 ? r.rate.tat_min_ms / r.tat_max_ms : 1.0;
    stragglers.add_row({Table::num(factor, 0) + "x slower NIC",
                        format_duration(static_cast<Time>(r.tat_max_ms * 1e6)),
                        Table::num(inflation, 2) + "x", Table::num(spread, 3)});
    report.add(tag + ".tat_max_ms", r.tat_max_ms);
    report.add(tag + ".inflation", inflation);
    report.add(tag + ".straggler_windows", static_cast<double>(r.straggler_windows));
  }
  std::printf("one slow worker (worker 0, whole run):\n%s\n", stragglers.to_string().c_str());

  // --- 2. link-flap duty-cycle sweep ---------------------------------------
  // Worker 0's link cycles down for duty*period out of every period. The
  // period (700 us) deliberately does not divide the 1 ms RTO, so
  // retransmissions cannot resonate with the down windows.
  Table flaps({"flap duty", "TAT (max)", "inflation", "flaps", "pkts killed"});
  for (double duty : {0.05, 0.10, 0.20}) {
    core::FaultPlan plan;
    plan.flap_cycles.push_back({0, usec(700), duty, usec(50), 0});
    const std::string tag = "flap-" + Table::num(duty * 100, 0) + "pct";
    const FaultResult r = measure_faulted(rate, workers, scale.tensor_elems, plan, &sidecar,
                                          tag, &timeline_req);
    const double inflation = r.tat_max_ms / clean.tat_max_ms;
    flaps.add_row({Table::num(duty * 100, 0) + "%",
                   format_duration(static_cast<Time>(r.tat_max_ms * 1e6)),
                   Table::num(inflation, 2) + "x", Table::num(static_cast<double>(r.flaps_applied), 0),
                   Table::num(static_cast<double>(r.dropped_down), 0)});
    report.add(tag + ".tat_max_ms", r.tat_max_ms);
    report.add(tag + ".inflation", inflation);
    report.add(tag + ".flaps_applied", static_cast<double>(r.flaps_applied));
    report.add(tag + ".dropped_down", static_cast<double>(r.dropped_down));
  }
  std::printf("link 0 flapping (700 us period, 1 ms RTO):\n%s"
              "(duty-insensitive by design: each down EDGE kills the in-flight window and\n"
              " costs ~1 RTO of stall, during which no new traffic enters later down time —\n"
              " so inflation tracks flap frequency, swept below, not duty.)\n\n",
              flaps.to_string().c_str());

  Table periods({"flap period", "TAT (max)", "inflation", "flaps", "pkts killed"});
  for (Time period : {usec(350), usec(700), usec(1400)}) {
    core::FaultPlan plan;
    plan.flap_cycles.push_back({0, period, 0.10, usec(50), 0});
    const std::string tag = "flap-period-" + Table::num(to_usec(period), 0) + "us";
    const FaultResult r = measure_faulted(rate, workers, scale.tensor_elems, plan, &sidecar,
                                          tag, &timeline_req);
    const double inflation = r.tat_max_ms / clean.tat_max_ms;
    periods.add_row({format_duration(period), format_duration(static_cast<Time>(r.tat_max_ms * 1e6)),
                     Table::num(inflation, 2) + "x",
                     Table::num(static_cast<double>(r.flaps_applied), 0),
                     Table::num(static_cast<double>(r.dropped_down), 0)});
    report.add(tag + ".tat_max_ms", r.tat_max_ms);
    report.add(tag + ".inflation", inflation);
    report.add(tag + ".flaps_applied", static_cast<double>(r.flaps_applied));
  }
  std::printf("link 0 flapping at 10%% duty, period swept:\n%s\n", periods.to_string().c_str());

  // --- 3. burstiness at matched average loss --------------------------------
  // Gilbert-Elliott with p_enter=0.002, p_exit=0.1, loss_bad=0.25 has
  // stationary loss 0.25 * 0.002 / 0.102 ~= 0.49% — compare against a 0.49%
  // Bernoulli process to isolate the cost of burstiness itself.
  const double matched = 0.25 * 0.002 / 0.102;
  core::FaultPlan ge_plan;
  ge_plan.bursts.push_back({-1, net::BurstLossConfig{0.002, 0.1, 0.0, 0.25}});
  FaultResult ge;
  {
    ScopedAttribution attrib;
    ge = measure_faulted(rate, workers, scale.tensor_elems, ge_plan, &sidecar,
                         "gilbert-elliott", &timeline_req);
    attrib.report(report, "gilbert-elliott");
    attrib.write_jsonl("fault_sweep_attribution.jsonl");
  }
  const RateResult bern = measure_switchml(rate, workers, scale, 0, false, matched, 4, 0.0,
                                           false, &sidecar, "bernoulli-matched", &timeline_req);
  std::printf("burst loss (both ~%.2f%% average):\n", matched * 100);
  Table burst({"loss process", "TAT", "inflation"});
  burst.add_row({"Bernoulli", format_duration(static_cast<Time>(bern.tat_ms * 1e6)),
                 Table::num(bern.tat_ms / clean.rate.tat_ms, 2) + "x"});
  burst.add_row({"Gilbert-Elliott (" + Table::num(static_cast<double>(ge.burst_entries), 0) +
                     " bursts)",
                 format_duration(static_cast<Time>(ge.rate.tat_ms * 1e6)),
                 Table::num(ge.rate.tat_ms / clean.rate.tat_ms, 2) + "x"});
  std::printf("%s\n", burst.to_string().c_str());
  report.add("bernoulli-matched.tat_ms", bern.tat_ms);
  report.add("gilbert-elliott.tat_ms", ge.rate.tat_ms);
  report.add("gilbert-elliott.dropped_burst", static_cast<double>(ge.dropped_burst));
  report.add("gilbert-elliott.burst_entries", static_cast<double>(ge.burst_entries));

  // --- 4. hierarchy failover point ------------------------------------------
  // A leaf switch of a 2-rack hierarchy restarts halfway through the run:
  // pool, bitmaps, and shadow copies wiped; the reduction still completes via
  // worker RTO retransmission. One worker straggles 16x in BOTH runs (the
  // comparator isolates the restart's cost): with perfectly synchronized
  // workers every slot aggregates instantaneously and a wipe lands on empty
  // state, so the straggler is what keeps slots partially aggregated — and
  // vulnerable — when the wipe hits.
  {
    core::HierarchyConfig hcfg;
    hcfg.racks = 2;
    hcfg.workers_per_rack = 4;
    hcfg.timing_only = true;
    hcfg.faults.stragglers.push_back({0, 16.0, 0, -1});
    core::HierarchicalCluster clean_h(hcfg);
    const auto clean_tats = clean_h.reduce_timing(scale.tensor_elems);
    Time clean_max = 0;
    for (Time t : clean_tats) clean_max = std::max(clean_max, t);

    hcfg.faults.switch_restarts.push_back({1, clean_max / 2}); // leaf 0
    core::HierarchicalCluster faulted(hcfg);
    ScopedTimeline scoped(&timeline_req, faulted.simulation(), faulted.metrics(),
                          "hierarchy-restart");
    const auto tats = faulted.reduce_timing(scale.tensor_elems);
    scoped.finish_and_write();
    Time max_tat = 0;
    for (Time t : tats) max_tat = std::max(max_tat, t);
    sidecar.record("hierarchy-restart", faulted.metrics());
    const double inflation = static_cast<double>(max_tat) / static_cast<double>(clean_max);
    std::printf("hierarchy failover (2 racks x 4 workers, 16x straggler, leaf-0 restart at TAT/2):\n"
                "  no restart %s -> restart %s (%.2fx), restarts=%llu\n\n",
                format_duration(clean_max).c_str(), format_duration(max_tat).c_str(), inflation,
                static_cast<unsigned long long>(faulted.leaf(0).counters().restarts));
    report.add("hierarchy-clean.tat_max_ms", to_msec(clean_max));
    report.add("hierarchy-restart.tat_max_ms", to_msec(max_tat));
    report.add("hierarchy-restart.restarts",
               static_cast<double>(faulted.leaf(0).counters().restarts));
  }

  const std::string trace_path = "fault_sweep_trace.json";
  sink->write_chrome_json(trace_path);
  std::printf("fault trace (Perfetto / chrome://tracing): %s (%zu events, %llu dropped)\n",
              trace_path.c_str(), sink->events().size(),
              static_cast<unsigned long long>(sink->total_drops()));
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
