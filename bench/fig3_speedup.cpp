// Figure 3: end-to-end training speedup of SwitchML over the fastest
// TensorFlow baseline (Horovod + NCCL) for the nine benchmark DNNs, on
// 10 Gbps and 100 Gbps networks with 8 workers — computed with the
// event-driven layer-wise training simulation (see table1 bench header).
//
// Shape to reproduce: speedups between ~1.2x and ~3x, largest for the
// communication-bound models (vgg*, alexnet), smallest for compute-bound
// ones (inception4, googlenet).
#include <cstdio>

#include "bench_util.hpp"
#include "framework/training_sim.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  const bool fast = has_flag(argc, argv, "--fast");
  const int workers = 8;
  MetricsSidecar sidecar("fig3_speedup_metrics.json");
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, msec(1));
  BenchReport report("fig3_speedup", argc, argv);

  std::printf("=== Figure 3: training speedup vs NCCL, 8 workers (event-driven sim) ===\n");
  Table table({"model", "10 Gbps", "100 Gbps"});

  for (const auto& spec : perf::model_zoo()) {
    std::vector<std::string> cells{spec.name};
    for (BitsPerSecond rate : {gbps(10), gbps(100)}) {
      const std::string tag =
          std::string(spec.name) + "." + std::to_string(rate / kGbps) + "gbps";
      framework::TrainingSimConfig cfg;
      cfg.n_workers = workers;
      cfg.rate = rate;
      cfg.iterations = 3;
      cfg.size_scale = fast ? 1.0 / 32 : 1.0 / 16;
      attach_sim_telemetry(cfg, tag + ".switchml", &sidecar, &timeline_req);
      const auto sml = framework::simulate_switchml_training(spec, cfg);
      attach_sim_telemetry(cfg, tag + ".nccl", &sidecar, &timeline_req);
      const auto nccl = framework::simulate_ring_training(spec, cfg, core::nccl_tcp(rate));
      cells.push_back(Table::num(sml.images_per_s / nccl.images_per_s, 1) + "x");
      report.add(tag + ".switchml.images_per_s", sml.images_per_s);
      report.add(tag + ".nccl.images_per_s", nccl.images_per_s);
      report.add(tag + ".speedup", sml.images_per_s / nccl.images_per_s);
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("(paper reports 1.2x-3.0x at 10G and 1.2x-2.8x at 100G)\n");
  const std::string written = sidecar.write();
  if (!written.empty()) std::printf("telemetry sidecar: %s\n", written.c_str());
  const std::string rep = report.write();
  if (!rep.empty()) std::printf("bench report: %s\n", rep.c_str());
  return 0;
}
