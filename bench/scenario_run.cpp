// scenario_run: executes one declarative scenario file (scenarios/*.json, or
// anything scenario::load_file accepts) with the full telemetry stack armed —
// BenchReport, metrics sidecar, timeline sampling, Perfetto trace export,
// critical-path attribution, and INT verdict counts when the scenario enables
// telemetry.
//
//   scenario_run FILE.json [--check-only] [--print-json]
//                [--report-out PATH] [--metrics-out PATH]
//                [--timeline-out PREFIX] [--timeline-period-us N]
//                [--trace-out PATH] [--trace-mask NAMES] [--attr-out PATH]
//
// Exit codes: 0 ok, 1 scenario failed to load/validate, 2 usage error.
// --check-only loads and validates (including the eager FaultPlan check)
// without building a fabric — the CI corpus schema check is this flag over
// every committed scenario.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

using namespace switchml;
using namespace switchml::bench;

int main(int argc, char** argv) {
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.size() >= 2 && a[0] == '-' && a[1] == '-') {
      // Flags with a value consume the next arg; skip it during the scan.
      if (a == "--report-out" || a == "--metrics-out" || a == "--timeline-out" ||
          a == "--timeline-period-us" || a == "--trace-out" || a == "--trace-mask" ||
          a == "--attr-out")
        ++i;
      continue;
    }
    if (!file.empty()) {
      std::fprintf(stderr, "scenario_run: exactly one scenario file expected (got \"%s\" and \"%s\")\n",
                   file.c_str(), a.c_str());
      return 2;
    }
    file = a;
  }
  if (file.empty()) {
    std::fprintf(stderr,
                 "usage: scenario_run FILE.json [--check-only] [--print-json]\n"
                 "                    [--report-out PATH] [--metrics-out PATH]\n"
                 "                    [--timeline-out PREFIX] [--timeline-period-us N]\n"
                 "                    [--trace-out PATH] [--trace-mask NAMES] [--attr-out PATH]\n");
    return 2;
  }

  scenario::Scenario s;
  try {
    s = scenario::load_file(file);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_run: %s\n", e.what());
    return 1;
  }

  const core::FaultTargets shape = scenario::shape_counts(s.topology);
  std::printf("scenario: %s (%d workers, %zu links, %zu switches; %s mode, %llu elems x %d)\n",
              s.name.c_str(), shape.n_workers, shape.n_links, shape.n_switches,
              s.workload.timing ? "timing" : "data",
              static_cast<unsigned long long>(s.workload.tensor_elems), s.workload.reductions);
  if (!s.description.empty()) std::printf("  %s\n", s.description.c_str());
  if (has_flag(argc, argv, "--print-json"))
    std::printf("%s\n", scenario::to_json(s).dump(true).c_str());
  if (has_flag(argc, argv, "--check-only")) {
    std::printf("OK (loaded and validated; no fabric built)\n");
    return 0;
  }

  BenchReport report(s.name, argc, argv);
  report.info("scenario_file", file);
  const TimelineRequest timeline_req = TimelineRequest::from_args(argc, argv, usec(100));
  const std::string trace_out = arg_value(argc, argv, "--trace-out");
  std::unique_ptr<trace::TraceSink> sink;
  std::unique_ptr<trace::TraceSink::Scope> trace_scope;
  if (!trace_out.empty()) {
    sink = std::make_unique<trace::TraceSink>(1u << 20,
                                              trace_mask_from_args(argc, argv, trace::kCatFault));
    trace_scope = std::make_unique<trace::TraceSink::Scope>(sink.get());
  }
  const std::string metrics_out = arg_value(argc, argv, "--metrics-out");
  MetricsSidecar sidecar(metrics_out);

  // Constructed before the fabric (inside run()) so the ledger is ambient
  // when workers register their attr.* counters.
  ScopedAttribution attrib;

  // The fabric lives inside scenario::run(); everything that needs it — the
  // timeline recorder, the final counter harvest — happens in the hooks.
  std::unique_ptr<ScopedTimeline> timeline;
  struct Harvest {
    std::uint64_t sync_queries = 0, escalations = 0, epoch_resyncs = 0, rescues_sent = 0;
    std::uint64_t switch_restarts = 0, rescues_applied = 0;
    std::uint64_t int_verdicts = 0;
    std::uint64_t int_by_kind[inttel::FaultLocalizer::kKindCount] = {};
    bool have_int = false;
  } harvest;
  scenario::RunHooks hooks;
  hooks.on_built = [&](core::Fabric& f) {
    timeline = std::make_unique<ScopedTimeline>(&timeline_req, f.simulation(), f.metrics(),
                                                sanitize_label(s.name));
  };
  hooks.on_reduction = [&](core::Fabric& f, int rep, const std::vector<Time>& tats) {
    Summary rep_ms;
    for (Time t : tats) rep_ms.add(to_msec(t));
    std::printf("  rep %d: TAT %s\n", rep, rep_ms.str().c_str());
    if (rep != s.workload.reductions - 1) return;
    timeline->finish_and_write();
    if (!metrics_out.empty()) sidecar.record(sanitize_label(s.name), f.metrics());
    for (int w = 0; w < f.n_workers(); ++w) {
      const auto& rc = f.worker(w).recovery();
      harvest.sync_queries += rc.sync_queries;
      harvest.escalations += rc.escalations;
      harvest.epoch_resyncs += rc.epoch_resyncs;
      harvest.rescues_sent += rc.rescues_sent;
    }
    for (std::size_t i = 0; i < f.n_switches(); ++i) {
      harvest.switch_restarts += f.switch_at(i).counters().restarts;
      harvest.rescues_applied += f.switch_at(i).counters().rescues_applied;
    }
    if (auto* loc = f.int_localizer()) {
      harvest.have_int = true;
      harvest.int_verdicts = loc->verdicts().size();
      for (std::size_t k = 0; k < inttel::FaultLocalizer::kKindCount; ++k)
        harvest.int_by_kind[k] =
            loc->count(static_cast<inttel::FaultLocalizer::Verdict::Kind>(k));
    }
  };

  scenario::RunResult result;
  try {
    result = scenario::run(s, hooks);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_run: run failed: %s\n", e.what());
    return 1;
  }

  Summary all_ms;
  for (const auto& rep : result.tats)
    for (Time t : rep) all_ms.add(to_msec(t));
  report.add("tat_median_ms", all_ms.median());
  report.add("tat_max_ms", all_ms.max());
  for (std::size_t r = 0; r < result.tats.size(); ++r) {
    Summary rep_ms;
    for (Time t : result.tats[r]) rep_ms.add(to_msec(t));
    report.add("rep" + std::to_string(r) + ".tat_max_ms", rep_ms.max());
  }
  report.add("fallback_engaged", result.fallback_engaged ? 1.0 : 0.0);
  report.add("dead_declared", static_cast<double>(result.dead_declared));
  if (result.data_checked)
    report.add("data_bit_exact", result.data_bit_exact ? 1.0 : 0.0);
  report.add("recovery.sync_queries", static_cast<double>(harvest.sync_queries));
  report.add("recovery.escalations", static_cast<double>(harvest.escalations));
  report.add("recovery.epoch_resyncs", static_cast<double>(harvest.epoch_resyncs));
  report.add("recovery.rescues_sent", static_cast<double>(harvest.rescues_sent));
  report.add("switch.restarts", static_cast<double>(harvest.switch_restarts));
  report.add("switch.rescues_applied", static_cast<double>(harvest.rescues_applied));
  if (harvest.have_int) {
    report.add("int.verdicts", static_cast<double>(harvest.int_verdicts));
    for (std::size_t k = 0; k < inttel::FaultLocalizer::kKindCount; ++k)
      report.add(std::string("int.") +
                     inttel::FaultLocalizer::to_string(
                         static_cast<inttel::FaultLocalizer::Verdict::Kind>(k)),
                 static_cast<double>(harvest.int_by_kind[k]));
  }
  attrib.report(report, "");
  const std::string attr_out = arg_value(argc, argv, "--attr-out");
  if (!attr_out.empty()) attrib.write_jsonl(attr_out);

  std::printf("TAT: %s ms (max %.3f ms)%s%s\n", all_ms.str().c_str(), all_ms.max(),
              result.fallback_engaged ? " [fallback engaged]" : "",
              result.data_checked ? (result.data_bit_exact ? " [data bit-exact]" : " [DATA MISMATCH]")
                                  : "");
  if (!metrics_out.empty()) {
    const std::string p = sidecar.write();
    if (!p.empty()) std::printf("metrics sidecar: %s\n", p.c_str());
  }
  if (sink) {
    sink->write_chrome_json(trace_out);
    std::printf("trace (Perfetto / chrome://tracing): %s (%zu events)\n", trace_out.c_str(),
                sink->events().size());
  }
  const std::string rp = report.write();
  if (!rp.empty()) std::printf("report: %s\n", rp.c_str());

  // A data-mode scenario that converged without bit-exact results is a
  // protocol bug, not a telemetry detail — fail the invocation.
  if (result.data_checked && !result.data_bit_exact) return 1;
  return 0;
}
