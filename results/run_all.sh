#!/bin/bash
# Convenience: run every bench binary at full scale, one output file per
# bench, into results/. The canonical combined capture lives in
# /root/repo/bench_output.txt (regenerate with:
#   for b in build/bench/*; do $b; done 2>&1 | tee bench_output.txt ).
cd /root/repo
for b in build/bench/*; do
  name=$(basename "$b")
  echo "=== running $name ==="
  timeout 1200 "$b" > "results/$name.txt" 2>&1
  echo "=== $name exit=$? ==="
done
