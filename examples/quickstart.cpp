// Quickstart: aggregate one float tensor across 8 simulated workers through
// the programmable switch, exactly as an ML framework would call the library.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/allreduce.hpp"
#include "core/cluster.hpp"
#include "sim/rng.hpp"

using namespace switchml;

int main() {
  // 1. Describe the rack: 8 workers, 10 Gbps links, paper-tuned pool size.
  core::ClusterConfig config = core::ClusterConfig::for_rate(gbps(10), /*n_workers=*/8);
  core::Cluster cluster(config);

  // 2. Each worker contributes a gradient tensor (here: random values).
  const std::size_t d = 1 << 18; // 1 MB of float32 gradients
  sim::Rng rng = sim::Rng::stream(1, "quickstart");
  std::vector<std::vector<float>> gradients(8, std::vector<float>(d));
  for (auto& g : gradients)
    for (auto& v : g) v = static_cast<float>(rng.normal(0.0, 0.5));

  // 3. All-reduce: quantize (Theorem 2 scaling factor chosen automatically),
  //    stream 180-byte packets through the switch pool, dequantize.
  core::AllReduceOptions options;
  options.average = true; // model averaging: divide the sum by n
  const auto result = core::all_reduce(cluster, gradients, options);

  // 4. Inspect the outcome.
  std::printf("SwitchML quickstart\n");
  std::printf("  aggregated %zu elements across %d workers\n", d, cluster.n_workers());
  std::printf("  scaling factor f = %.3e (Theorem 1 error bound: %.3e per element)\n",
              result.scaling_factor, 8.0 / result.scaling_factor);
  std::printf("  tensor aggregation time: %.3f ms per worker (median)\n",
              to_msec(result.tat[0]));
  std::printf("  sample: worker0[0..3] = %.4f %.4f %.4f %.4f\n", result.outputs[0][0],
              result.outputs[0][1], result.outputs[0][2], result.outputs[0][3]);

  const auto& sw = cluster.agg_switch().counters();
  std::printf("  switch: %llu updates aggregated, %llu results multicast, %zu B of registers\n",
              static_cast<unsigned long long>(sw.updates_received),
              static_cast<unsigned long long>(sw.results_multicast),
              cluster.agg_switch().register_bytes());
  return 0;
}
