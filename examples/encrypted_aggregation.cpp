// Appendix D: aggregating encrypted model updates. Paillier is additively
// homomorphic — E(x) * E(y) mod n^2 = E(x + y) — so an aggregation device
// capable of modular multiplication could sum gradients WITHOUT decrypting
// them. This example runs the full pipeline on a small tensor:
//
//   worker: gradient -> quantize (f, Theorem 2) -> signed encode -> encrypt
//   aggregator: ciphertext-multiply accumulate (the would-be switch op)
//   worker: decrypt -> decode -> dequantize -> aggregated gradient
//
// and verifies the result against the plaintext SwitchML aggregation.
#include <cstdio>

#include "crypto/paillier.hpp"
#include "quant/fixed_point.hpp"
#include "sim/rng.hpp"

using namespace switchml;

int main() {
  const int n_workers = 4;
  const std::size_t d = 16; // ciphertexts are ~1 kbit each; keep the demo small

  sim::Rng rng = sim::Rng::stream(99, "encrypted");
  std::printf("generating a 512-bit Paillier key...\n");
  const auto kp = crypto::paillier_keygen(512, rng);
  crypto::EncryptedAggregator aggregator(kp.pub);

  // Per-worker float gradients.
  std::vector<std::vector<float>> grads(n_workers, std::vector<float>(d));
  for (auto& g : grads)
    for (auto& v : g) v = static_cast<float>(rng.normal(0.0, 1.0));

  // Quantize exactly as the plaintext deployment would (§3.7).
  float max_abs = 0.0f;
  for (const auto& g : grads)
    for (float v : g) max_abs = std::max(max_abs, std::abs(v));
  const double f = quant::max_safe_scaling_factor(n_workers, max_abs * 2.0);

  // Workers encrypt their quantized updates.
  auto acc = aggregator.zero(d);
  std::vector<std::int64_t> plain_sum(d, 0);
  for (int w = 0; w < n_workers; ++w) {
    const auto q = quant::quantize(grads[static_cast<std::size_t>(w)], f);
    std::vector<crypto::BigInt> enc(d);
    for (std::size_t i = 0; i < d; ++i) {
      enc[i] = kp.pub.encrypt_signed(q[i], rng);
      plain_sum[i] += q[i];
    }
    aggregator.accumulate(acc, enc); // modular multiplication only!
    std::printf("  worker %d: %zu ciphertexts aggregated\n", w, d);
  }

  // Any worker holding the private key decrypts the aggregate.
  bool exact = true;
  std::printf("\n%-6s %-12s %-12s %-12s\n", "elem", "decrypted", "plain sum", "float sum/f");
  for (std::size_t i = 0; i < d; ++i) {
    const std::int64_t m = kp.priv.decrypt_signed(acc[i], kp.pub);
    if (m != plain_sum[i]) exact = false;
    if (i < 6)
      std::printf("%-6zu %-12lld %-12lld %-12.6f\n", i, static_cast<long long>(m),
                  static_cast<long long>(plain_sum[i]), static_cast<double>(m) / f);
  }
  std::printf("...\nencrypted aggregation matches the plaintext integer sums: %s\n",
              exact ? "YES" : "NO");
  std::printf("(the aggregator only ever multiplied ciphertexts mod n^2 — it never saw a "
              "gradient)\n");
  return exact ? 0 : 1;
}
