// End-to-end distributed training demo: synchronous data-parallel SGD on a
// synthetic classification task where EVERY gradient exchange travels
// through the simulated SwitchML fabric — quantization, 180-byte packets,
// in-switch integer aggregation, dequantization — via the stream buffer
// manager, exactly like the Horovod/Gloo integration of §4.
//
// Compares against exact (float) aggregation to show the quantized path
// reaches the same accuracy, and reports the communication statistics.
#include <cstdio>

#include "core/cluster.hpp"
#include "core/stream_manager.hpp"
#include "ml/trainer.hpp"
#include "quant/fixed_point.hpp"

using namespace switchml;

namespace {

// Aggregator that routes gradients through the simulated SwitchML cluster.
class InNetworkAggregator final : public ml::Aggregator {
public:
  explicit InNetworkAggregator(core::Cluster& cluster) : cluster_(cluster) {}

  void aggregate(const std::vector<std::vector<float>>& grads,
                 std::vector<float>& out) override {
    // Profile the gradients and pick f per Appendix C (2x headroom).
    float max_abs = 0.0f;
    for (const auto& g : grads)
      for (float v : g) max_abs = std::max(max_abs, std::abs(v));
    const double f =
        quant::max_safe_scaling_factor(cluster_.n_workers(), (max_abs + 1e-6f) * 2.0);

    const int n = cluster_.n_workers();
    std::vector<std::vector<float>> outputs(static_cast<std::size_t>(n),
                                            std::vector<float>(grads.front().size()));
    std::vector<std::unique_ptr<core::StreamManager>> mgrs;
    for (int w = 0; w < n; ++w) {
      auto m = std::make_unique<core::StreamManager>(cluster_.worker(w));
      m->submit(grads[static_cast<std::size_t>(w)], outputs[static_cast<std::size_t>(w)], f,
                nullptr);
      m->flush();
      mgrs.push_back(std::move(m));
    }
    cluster_.simulation().run();
    out = std::move(outputs.front());
    comm_time_ms_ += 0; // timing detail printed from worker counters below
  }

  [[nodiscard]] const char* name() const override { return "switchml"; }

private:
  core::Cluster& cluster_;
  double comm_time_ms_ = 0;
};

} // namespace

int main() {
  const int n_workers = 8;
  const int iterations = 400;

  sim::Rng data_rng = sim::Rng::stream(2024, "train-data");
  const auto full = ml::make_blobs(4000, 32, 10, 3.0, 1.0, data_rng);
  auto [train, test] = ml::split(full, 0.8);

  ml::TrainerConfig tc;
  tc.n_workers = n_workers;
  tc.hidden_dim = 64;
  tc.batch_per_worker = 16;
  tc.lr = 0.1;

  std::printf("distributed training: %d workers, %zu train / %zu test samples, %d iters\n\n",
              n_workers, train.size(), test.size(), iterations);

  // Baseline: exact float aggregation.
  {
    ml::DataParallelTrainer trainer(train, test, tc);
    ml::ExactAggregator exact;
    const auto r = trainer.train(iterations, exact);
    std::printf("exact float aggregation:    train %.1f%%  test %.1f%%  (max|g| = %.3f)\n",
                r.final_train_accuracy * 100, r.final_test_accuracy * 100,
                r.max_abs_gradient);
  }

  // SwitchML: every iteration's gradients cross the simulated network.
  {
    core::ClusterConfig cc = core::ClusterConfig::for_rate(gbps(10), n_workers);
    cc.pool_size = 64;
    core::Cluster cluster(cc);
    ml::DataParallelTrainer trainer(train, test, tc);
    InNetworkAggregator agg(cluster);
    const auto r = trainer.train(iterations, agg);
    std::printf("in-network (quantized):     train %.1f%%  test %.1f%%\n",
                r.final_train_accuracy * 100, r.final_test_accuracy * 100);

    const auto& w0 = cluster.worker(0).counters();
    const auto& sw = cluster.agg_switch().counters();
    std::printf("\ncommunication totals over %d iterations:\n", iterations);
    std::printf("  per worker: %llu update packets sent (%llu retransmitted)\n",
                static_cast<unsigned long long>(w0.updates_sent),
                static_cast<unsigned long long>(w0.retransmissions));
    std::printf("  switch: %llu slot completions, %llu multicasts, %.1f us simulated time\n",
                static_cast<unsigned long long>(sw.completions),
                static_cast<unsigned long long>(sw.results_multicast),
                to_usec(cluster.simulation().now()));
  }
  return 0;
}
