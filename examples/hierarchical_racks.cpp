// §6 "scaling beyond a rack": hierarchically composed SwitchML across
// multiple racks. Each leaf switch aggregates its rack's workers and
// forwards ONE partial-aggregate packet per chunk upstream; the root
// completes the aggregation and multicasts down through the leaves.
// Demonstrates correctness (including under loss) and the d:1 uplink
// bandwidth reduction that makes the composition oversubscription-friendly.
#include <cstdio>

#include "core/cluster.hpp"
#include "sim/rng.hpp"

using namespace switchml;

int main() {
  core::HierarchyConfig cfg;
  cfg.racks = 4;
  cfg.workers_per_rack = 4;
  cfg.pool_size = 32;
  cfg.loss_prob = 0.001; // a little loss everywhere, to exercise recovery
  core::HierarchicalCluster cluster(cfg);

  const int n = cluster.n_workers();
  const std::size_t d = 64 * 1024;
  sim::Rng rng = sim::Rng::stream(7, "hier");
  std::vector<std::vector<std::int32_t>> updates(static_cast<std::size_t>(n),
                                                 std::vector<std::int32_t>(d));
  std::vector<std::int32_t> expected(d, 0);
  for (auto& u : updates)
    for (std::size_t i = 0; i < d; ++i) {
      u[i] = static_cast<std::int32_t>(rng.uniform_int(-1000, 1000));
      expected[i] += u[i];
    }

  std::printf("hierarchical SwitchML: %d racks x %d workers, 0.1%% loss on every link\n",
              cfg.racks, cfg.workers_per_rack);
  auto result = cluster.reduce_i32(updates);

  bool correct = true;
  for (int w = 0; w < n; ++w)
    if (result.outputs[static_cast<std::size_t>(w)] != expected) correct = false;
  std::printf("exact aggregate at all %d workers: %s\n", n, correct ? "YES" : "NO");
  std::printf("median TAT: %.3f ms\n\n", to_msec(result.tat[static_cast<std::size_t>(n / 2)]));

  const std::uint64_t chunks = d / 32;
  std::printf("bandwidth accounting (chunks = %llu):\n",
              static_cast<unsigned long long>(chunks));
  for (int r = 0; r < cfg.racks; ++r) {
    const auto& c = cluster.leaf(r).counters();
    std::printf("  leaf %d: %llu worker updates in -> %llu partials up (%.1f:1 reduction)\n", r,
                static_cast<unsigned long long>(c.updates_received),
                static_cast<unsigned long long>(c.upstream_partials),
                static_cast<double>(c.updates_received) /
                    static_cast<double>(c.upstream_partials));
  }
  const auto& root = cluster.root().counters();
  std::printf("  root: %llu partials in, %llu results multicast to %d leaves\n",
              static_cast<unsigned long long>(root.updates_received),
              static_cast<unsigned long long>(root.results_multicast), cfg.racks);
  return correct ? 0 : 1;
}
