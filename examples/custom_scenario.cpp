// Scenario driver: run any aggregation strategy on a custom cluster from the
// command line and get the paper's metrics (TAT, ATE/s, RTT, retransmission
// counts) for it.
//
//   ./custom_scenario --strategy switchml --workers 8 --rate-gbps 10
//       --tensor-mb 16 --loss 0.001 --pool 128 --adaptive-rto
//   ./custom_scenario --strategy hierarchical --racks 4 --workers 16
//   ./custom_scenario --strategy gloo|nccl|dedicated-ps|colocated-ps ...
#include <cstdio>
#include <cstring>
#include <string>

#include "collectives/bounds.hpp"
#include "collectives/ring.hpp"
#include "collectives/streaming_ps.hpp"
#include "core/cluster.hpp"
#include "core/profiles.hpp"

using namespace switchml;

namespace {

struct Args {
  std::string strategy = "switchml";
  int workers = 8;
  long long rate_gbps = 10;
  double tensor_mb = 16.0;
  double loss = 0.0;
  std::uint32_t pool = 0; // 0 = paper default for the rate
  int racks = 2;
  bool adaptive_rto = false;
  bool mtu = false;

  static Args parse(int argc, char** argv) {
    Args a;
    auto next = [&](int& i) -> const char* {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for flag");
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string f = argv[i];
      if (f == "--strategy") a.strategy = next(i);
      else if (f == "--workers") a.workers = std::atoi(next(i));
      else if (f == "--rate-gbps") a.rate_gbps = std::atoll(next(i));
      else if (f == "--tensor-mb") a.tensor_mb = std::atof(next(i));
      else if (f == "--loss") a.loss = std::atof(next(i));
      else if (f == "--pool") a.pool = static_cast<std::uint32_t>(std::atoi(next(i)));
      else if (f == "--racks") a.racks = std::atoi(next(i));
      else if (f == "--adaptive-rto") a.adaptive_rto = true;
      else if (f == "--mtu") a.mtu = true;
      else if (f == "--help") {
        std::printf("flags: --strategy switchml|hierarchical|gloo|nccl|dedicated-ps|"
                    "colocated-ps  --workers N  --rate-gbps G  --tensor-mb M  --loss P\n"
                    "       --pool S  --racks R  --adaptive-rto  --mtu\n");
        std::exit(0);
      } else {
        throw std::invalid_argument("unknown flag: " + f);
      }
    }
    return a;
  }
};

void report(const char* name, double tat_ms, std::uint64_t elems, double line_rate_elems) {
  const double ate = static_cast<double>(elems) / (tat_ms / 1e3);
  std::printf("%-14s TAT %10.3f ms   ATE/s %8.1f M   (%.1f%% of line rate)\n", name, tat_ms,
              ate / 1e6, ate / line_rate_elems * 100.0);
}

} // namespace

int main(int argc, char** argv) try {
  const Args args = Args::parse(argc, argv);
  const BitsPerSecond rate = gbps(args.rate_gbps);
  const auto elems = static_cast<std::uint64_t>(args.tensor_mb * 1e6 / 4);
  const double line = collectives::switchml_ate_rate(
      rate, args.mtu ? net::kMtuElemsPerPacket : net::kDefaultElemsPerPacket);

  std::printf("scenario: %s, %d workers @ %lld Gbps, %.1f MB tensor, loss %.3f%%\n\n",
              args.strategy.c_str(), args.workers, args.rate_gbps, args.tensor_mb,
              args.loss * 100);

  if (args.strategy == "switchml") {
    core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, args.workers);
    cfg.timing_only = true;
    cfg.loss_prob = args.loss;
    cfg.adaptive_rto = args.adaptive_rto;
    if (args.pool) cfg.pool_size = args.pool;
    if (args.mtu) {
      cfg.elems_per_packet = net::kMtuElemsPerPacket;
      cfg.mtu_emulation = true;
    }
    core::Cluster cluster(cfg);
    auto tats = cluster.reduce_timing(elems);
    report("SwitchML", to_msec(tats[static_cast<std::size_t>(args.workers / 2)]), elems, line);
    const auto& w = cluster.worker(0).counters();
    std::printf("worker 0: rtt %s us, %llu retransmissions, pool s=%u\n",
                cluster.worker(0).rtt().str().c_str(),
                static_cast<unsigned long long>(w.retransmissions), cfg.pool_size);
    std::printf("switch: %zu B registers (%.2f%% of a 4 MiB budget)\n",
                cluster.agg_switch().register_bytes(),
                100.0 * static_cast<double>(cluster.agg_switch().register_bytes()) /
                    static_cast<double>(4 * kMiB));
  } else if (args.strategy == "hierarchical") {
    if (args.racks < 1) throw std::invalid_argument("--racks must be >= 1");
    core::HierarchyConfig cfg;
    cfg.racks = args.racks;
    cfg.workers_per_rack = args.workers / args.racks;
    cfg.link_rate = rate;
    cfg.uplink_rate = rate;
    cfg.loss_prob = args.loss;
    cfg.timing_only = true;
    cfg.nic = core::switchml_worker_nic(rate);
    if (args.pool) cfg.pool_size = args.pool;
    core::HierarchicalCluster cluster(cfg);
    auto tats = cluster.reduce_timing(elems);
    report("Hierarchical", to_msec(tats[0]), elems, line);
    std::printf("leaf 0 reduction ratio: %llu updates in -> %llu partials up\n",
                static_cast<unsigned long long>(cluster.leaf(0).counters().updates_received),
                static_cast<unsigned long long>(cluster.leaf(0).counters().upstream_partials));
  } else if (args.strategy == "gloo" || args.strategy == "nccl") {
    const auto profile = args.strategy == "gloo" ? core::gloo_tcp(rate) : core::nccl_tcp(rate);
    collectives::BaselineClusterConfig cfg;
    cfg.n_hosts = args.workers;
    cfg.link_rate = rate;
    cfg.loss_prob = args.loss;
    cfg.nic = profile.nic;
    collectives::BaselineCluster cluster(cfg);
    collectives::RingAllReduce ring(cluster, profile.transport);
    const Time t = ring.run(static_cast<std::int64_t>(elems) * 4);
    report(args.strategy == "gloo" ? "Gloo (ring)" : "NCCL (ring)", to_msec(t), elems,
           collectives::ring_ate_rate(rate, args.workers));
    std::printf("transport: %llu segments, %llu retransmissions\n",
                static_cast<unsigned long long>(ring.counters().segments_sent),
                static_cast<unsigned long long>(ring.counters().retransmissions));
  } else if (args.strategy == "dedicated-ps" || args.strategy == "colocated-ps") {
    collectives::StreamingPsConfig cfg;
    cfg.n_workers = args.workers;
    cfg.placement = args.strategy == "dedicated-ps"
                        ? collectives::StreamingPsPlacement::Dedicated
                        : collectives::StreamingPsPlacement::Colocated;
    cfg.link_rate = rate;
    cfg.loss_prob = args.loss;
    cfg.nic = core::ps_host_nic(rate);
    cfg.timing_only = true;
    if (args.pool) cfg.pool_size = args.pool;
    collectives::StreamingPsCluster cluster(cfg);
    auto tats = cluster.reduce_timing(elems);
    report(args.strategy.c_str(), to_msec(tats[0]), elems, line);
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (see --help)\n", args.strategy.c_str());
    return 2;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
