// Loss-recovery walkthrough: replays the Appendix A execution — three
// workers, a model-update packet lost on the way up, a result packet lost on
// the way down — and narrates how the seen bitmap, the mod-n counter, and
// the shadow copy repair both without any switch-side timers.
#include <cstdio>

#include "core/cluster.hpp"

using namespace switchml;

int main() {
  core::ClusterConfig cfg;
  cfg.n_workers = 3;
  cfg.pool_size = 4;
  cfg.retransmit_timeout = msec(1);
  core::Cluster cluster(cfg);

  // Scripted losses on slot 1's first phase (offset k*1 = 32):
  //  t3: worker 2's update for slot 1 never reaches the switch;
  //  t7: the multicast result for slot 1 never reaches worker 0.
  bool dropped_up = false, dropped_down = false;
  cluster.link(2).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped_up && p.kind == net::PacketKind::SmlUpdate && p.idx == 1 && sender.id() == 2) {
      dropped_up = true;
      std::printf("[%8.1f us] X upstream loss: worker 2's update (slot 1, off %llu)\n",
                  to_usec(cluster.simulation().now()), static_cast<unsigned long long>(p.off));
      return true;
    }
    return false;
  });
  cluster.link(0).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped_down && p.kind == net::PacketKind::SmlResult && p.idx == 1 &&
        sender.id() >= 100) {
      dropped_down = true;
      std::printf("[%8.1f us] X downstream loss: result for worker 0 (slot 1, off %llu)\n",
                  to_usec(cluster.simulation().now()), static_cast<unsigned long long>(p.off));
      return true;
    }
    return false;
  });

  // Aggregate a small tensor: 4 slots x 32 elements x 3 phases.
  const std::size_t d = 32 * 4 * 3;
  std::vector<std::vector<std::int32_t>> updates(3, std::vector<std::int32_t>(d));
  std::vector<std::int32_t> expected(d);
  for (int w = 0; w < 3; ++w)
    for (std::size_t i = 0; i < d; ++i) {
      updates[static_cast<std::size_t>(w)][i] = static_cast<std::int32_t>(100 * (w + 1) + i);
      expected[i] += updates[static_cast<std::size_t>(w)][i];
    }

  std::printf("aggregating %zu elements on 3 workers with 1 ms RTO...\n\n", d);
  auto result = cluster.reduce_i32(updates);

  std::printf("\nrecovery postmortem:\n");
  const auto& sw = cluster.agg_switch().counters();
  std::printf("  switch ignored %llu duplicate updates via the seen bitmap\n",
              static_cast<unsigned long long>(sw.duplicate_updates));
  std::printf("  switch answered %llu retransmissions from the shadow copy (unicast)\n",
              static_cast<unsigned long long>(sw.unicast_replies));
  for (int w = 0; w < 3; ++w) {
    const auto& c = cluster.worker(w).counters();
    std::printf("  worker %d: %llu timeouts, %llu retransmissions, %llu duplicate results\n", w,
                static_cast<unsigned long long>(c.timeouts),
                static_cast<unsigned long long>(c.retransmissions),
                static_cast<unsigned long long>(c.duplicate_results));
  }

  bool correct = true;
  for (int w = 0; w < 3; ++w)
    if (result.outputs[static_cast<std::size_t>(w)] != expected) correct = false;
  std::printf("\nall workers hold the exact aggregate: %s\n", correct ? "YES" : "NO");
  std::printf("TAT with the two losses: %.2f ms — the two ~1 ms RTOs in series; self-clocking\n"
              "stalled ALL workers on the affected slot, never more than one phase apart.\n",
              to_msec(result.tat[0]));
  return correct ? 0 : 1;
}
