file(REMOVE_RECURSE
  "CMakeFiles/appendix_a_trace_test.dir/appendix_a_trace_test.cpp.o"
  "CMakeFiles/appendix_a_trace_test.dir/appendix_a_trace_test.cpp.o.d"
  "appendix_a_trace_test"
  "appendix_a_trace_test.pdb"
  "appendix_a_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_a_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
