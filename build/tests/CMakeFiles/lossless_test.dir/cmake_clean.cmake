file(REMOVE_RECURSE
  "CMakeFiles/lossless_test.dir/lossless_test.cpp.o"
  "CMakeFiles/lossless_test.dir/lossless_test.cpp.o.d"
  "lossless_test"
  "lossless_test.pdb"
  "lossless_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
