# Empty compiler generated dependencies file for switch_unit_test.
# This may be replaced when dependencies are built.
