file(REMOVE_RECURSE
  "CMakeFiles/switch_unit_test.dir/switch_unit_test.cpp.o"
  "CMakeFiles/switch_unit_test.dir/switch_unit_test.cpp.o.d"
  "switch_unit_test"
  "switch_unit_test.pdb"
  "switch_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
