# Empty dependencies file for switch_unit_test.
# This may be replaced when dependencies are built.
