file(REMOVE_RECURSE
  "CMakeFiles/tenancy_test.dir/tenancy_test.cpp.o"
  "CMakeFiles/tenancy_test.dir/tenancy_test.cpp.o.d"
  "tenancy_test"
  "tenancy_test.pdb"
  "tenancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
