# Empty compiler generated dependencies file for tenancy_test.
# This may be replaced when dependencies are built.
