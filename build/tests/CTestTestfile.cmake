# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/quant_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/appendix_a_trace_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/worker_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/switch_unit_test[1]_include.cmake")
include("/root/repo/build/tests/tenancy_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/stream_edge_test[1]_include.cmake")
include("/root/repo/build/tests/lossless_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
