# Empty compiler generated dependencies file for hierarchical_racks.
# This may be replaced when dependencies are built.
