file(REMOVE_RECURSE
  "../examples/hierarchical_racks"
  "../examples/hierarchical_racks.pdb"
  "CMakeFiles/hierarchical_racks.dir/hierarchical_racks.cpp.o"
  "CMakeFiles/hierarchical_racks.dir/hierarchical_racks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_racks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
