# Empty compiler generated dependencies file for loss_recovery_demo.
# This may be replaced when dependencies are built.
