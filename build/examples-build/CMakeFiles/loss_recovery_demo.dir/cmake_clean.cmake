file(REMOVE_RECURSE
  "../examples/loss_recovery_demo"
  "../examples/loss_recovery_demo.pdb"
  "CMakeFiles/loss_recovery_demo.dir/loss_recovery_demo.cpp.o"
  "CMakeFiles/loss_recovery_demo.dir/loss_recovery_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
