file(REMOVE_RECURSE
  "../examples/distributed_training"
  "../examples/distributed_training.pdb"
  "CMakeFiles/distributed_training.dir/distributed_training.cpp.o"
  "CMakeFiles/distributed_training.dir/distributed_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
