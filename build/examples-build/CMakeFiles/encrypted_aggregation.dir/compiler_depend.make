# Empty compiler generated dependencies file for encrypted_aggregation.
# This may be replaced when dependencies are built.
