file(REMOVE_RECURSE
  "../examples/encrypted_aggregation"
  "../examples/encrypted_aggregation.pdb"
  "CMakeFiles/encrypted_aggregation.dir/encrypted_aggregation.cpp.o"
  "CMakeFiles/encrypted_aggregation.dir/encrypted_aggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
