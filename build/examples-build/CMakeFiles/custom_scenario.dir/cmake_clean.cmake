file(REMOVE_RECURSE
  "../examples/custom_scenario"
  "../examples/custom_scenario.pdb"
  "CMakeFiles/custom_scenario.dir/custom_scenario.cpp.o"
  "CMakeFiles/custom_scenario.dir/custom_scenario.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
