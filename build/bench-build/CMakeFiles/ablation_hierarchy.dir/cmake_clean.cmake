file(REMOVE_RECURSE
  "../bench/ablation_hierarchy"
  "../bench/ablation_hierarchy.pdb"
  "CMakeFiles/ablation_hierarchy.dir/ablation_hierarchy.cpp.o"
  "CMakeFiles/ablation_hierarchy.dir/ablation_hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
