# Empty dependencies file for fig7_mtu.
# This may be replaced when dependencies are built.
