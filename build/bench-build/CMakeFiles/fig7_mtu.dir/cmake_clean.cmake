file(REMOVE_RECURSE
  "../bench/fig7_mtu"
  "../bench/fig7_mtu.pdb"
  "CMakeFiles/fig7_mtu.dir/fig7_mtu.cpp.o"
  "CMakeFiles/fig7_mtu.dir/fig7_mtu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mtu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
