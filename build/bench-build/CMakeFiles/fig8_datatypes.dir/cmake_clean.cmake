file(REMOVE_RECURSE
  "../bench/fig8_datatypes"
  "../bench/fig8_datatypes.pdb"
  "CMakeFiles/fig8_datatypes.dir/fig8_datatypes.cpp.o"
  "CMakeFiles/fig8_datatypes.dir/fig8_datatypes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
