# Empty dependencies file for fig8_datatypes.
# This may be replaced when dependencies are built.
