file(REMOVE_RECURSE
  "../bench/fig5_loss_inflation"
  "../bench/fig5_loss_inflation.pdb"
  "CMakeFiles/fig5_loss_inflation.dir/fig5_loss_inflation.cpp.o"
  "CMakeFiles/fig5_loss_inflation.dir/fig5_loss_inflation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_loss_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
