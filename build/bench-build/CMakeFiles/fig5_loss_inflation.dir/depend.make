# Empty dependencies file for fig5_loss_inflation.
# This may be replaced when dependencies are built.
