file(REMOVE_RECURSE
  "../bench/fig10_quantization"
  "../bench/fig10_quantization.pdb"
  "CMakeFiles/fig10_quantization.dir/fig10_quantization.cpp.o"
  "CMakeFiles/fig10_quantization.dir/fig10_quantization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
