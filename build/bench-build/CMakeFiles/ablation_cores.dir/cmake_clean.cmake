file(REMOVE_RECURSE
  "../bench/ablation_cores"
  "../bench/ablation_cores.pdb"
  "CMakeFiles/ablation_cores.dir/ablation_cores.cpp.o"
  "CMakeFiles/ablation_cores.dir/ablation_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
