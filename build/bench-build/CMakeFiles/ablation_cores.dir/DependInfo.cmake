
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_cores.cpp" "bench-build/CMakeFiles/ablation_cores.dir/ablation_cores.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_cores.dir/ablation_cores.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/switchml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/switchml_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/switchml_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/switchml_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/switchml_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/switchml_switch/CMakeFiles/switchml_switchprog.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/switchml_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/worker/CMakeFiles/switchml_worker.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/switchml_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/switchml_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/switchml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/switchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
