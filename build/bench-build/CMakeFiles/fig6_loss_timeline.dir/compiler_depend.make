# Empty compiler generated dependencies file for fig6_loss_timeline.
# This may be replaced when dependencies are built.
