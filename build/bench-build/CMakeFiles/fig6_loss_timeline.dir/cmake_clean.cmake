file(REMOVE_RECURSE
  "../bench/fig6_loss_timeline"
  "../bench/fig6_loss_timeline.pdb"
  "CMakeFiles/fig6_loss_timeline.dir/fig6_loss_timeline.cpp.o"
  "CMakeFiles/fig6_loss_timeline.dir/fig6_loss_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_loss_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
