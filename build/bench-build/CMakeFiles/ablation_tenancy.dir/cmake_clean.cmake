file(REMOVE_RECURSE
  "../bench/ablation_tenancy"
  "../bench/ablation_tenancy.pdb"
  "CMakeFiles/ablation_tenancy.dir/ablation_tenancy.cpp.o"
  "CMakeFiles/ablation_tenancy.dir/ablation_tenancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
