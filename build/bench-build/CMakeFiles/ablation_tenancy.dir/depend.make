# Empty dependencies file for ablation_tenancy.
# This may be replaced when dependencies are built.
