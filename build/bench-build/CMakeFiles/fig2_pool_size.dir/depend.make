# Empty dependencies file for fig2_pool_size.
# This may be replaced when dependencies are built.
