file(REMOVE_RECURSE
  "../bench/ablation_congestion"
  "../bench/ablation_congestion.pdb"
  "CMakeFiles/ablation_congestion.dir/ablation_congestion.cpp.o"
  "CMakeFiles/ablation_congestion.dir/ablation_congestion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
