file(REMOVE_RECURSE
  "libswitchml_sim.a"
)
