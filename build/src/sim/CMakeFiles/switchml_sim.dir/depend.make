# Empty dependencies file for switchml_sim.
# This may be replaced when dependencies are built.
