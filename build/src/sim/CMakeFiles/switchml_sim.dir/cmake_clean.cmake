file(REMOVE_RECURSE
  "CMakeFiles/switchml_sim.dir/simulation.cpp.o"
  "CMakeFiles/switchml_sim.dir/simulation.cpp.o.d"
  "libswitchml_sim.a"
  "libswitchml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
