file(REMOVE_RECURSE
  "libswitchml_perfmodel.a"
)
