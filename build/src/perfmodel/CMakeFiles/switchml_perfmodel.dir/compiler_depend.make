# Empty compiler generated dependencies file for switchml_perfmodel.
# This may be replaced when dependencies are built.
