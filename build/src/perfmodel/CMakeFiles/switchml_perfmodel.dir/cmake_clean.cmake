file(REMOVE_RECURSE
  "CMakeFiles/switchml_perfmodel.dir/model_zoo.cpp.o"
  "CMakeFiles/switchml_perfmodel.dir/model_zoo.cpp.o.d"
  "CMakeFiles/switchml_perfmodel.dir/training_model.cpp.o"
  "CMakeFiles/switchml_perfmodel.dir/training_model.cpp.o.d"
  "libswitchml_perfmodel.a"
  "libswitchml_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
