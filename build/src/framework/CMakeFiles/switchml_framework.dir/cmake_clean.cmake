file(REMOVE_RECURSE
  "CMakeFiles/switchml_framework.dir/layer_model.cpp.o"
  "CMakeFiles/switchml_framework.dir/layer_model.cpp.o.d"
  "CMakeFiles/switchml_framework.dir/training_sim.cpp.o"
  "CMakeFiles/switchml_framework.dir/training_sim.cpp.o.d"
  "libswitchml_framework.a"
  "libswitchml_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
