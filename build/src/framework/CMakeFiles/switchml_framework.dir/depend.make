# Empty dependencies file for switchml_framework.
# This may be replaced when dependencies are built.
