file(REMOVE_RECURSE
  "libswitchml_framework.a"
)
