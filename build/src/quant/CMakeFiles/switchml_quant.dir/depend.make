# Empty dependencies file for switchml_quant.
# This may be replaced when dependencies are built.
