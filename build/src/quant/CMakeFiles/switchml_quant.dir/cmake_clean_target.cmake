file(REMOVE_RECURSE
  "libswitchml_quant.a"
)
