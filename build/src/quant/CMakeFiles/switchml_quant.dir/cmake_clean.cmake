file(REMOVE_RECURSE
  "CMakeFiles/switchml_quant.dir/fixed_point.cpp.o"
  "CMakeFiles/switchml_quant.dir/fixed_point.cpp.o.d"
  "CMakeFiles/switchml_quant.dir/float16.cpp.o"
  "CMakeFiles/switchml_quant.dir/float16.cpp.o.d"
  "libswitchml_quant.a"
  "libswitchml_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
