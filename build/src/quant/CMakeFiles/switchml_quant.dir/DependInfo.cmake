
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/fixed_point.cpp" "src/quant/CMakeFiles/switchml_quant.dir/fixed_point.cpp.o" "gcc" "src/quant/CMakeFiles/switchml_quant.dir/fixed_point.cpp.o.d"
  "/root/repo/src/quant/float16.cpp" "src/quant/CMakeFiles/switchml_quant.dir/float16.cpp.o" "gcc" "src/quant/CMakeFiles/switchml_quant.dir/float16.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/switchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
