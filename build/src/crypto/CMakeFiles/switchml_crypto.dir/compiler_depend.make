# Empty compiler generated dependencies file for switchml_crypto.
# This may be replaced when dependencies are built.
