file(REMOVE_RECURSE
  "libswitchml_crypto.a"
)
