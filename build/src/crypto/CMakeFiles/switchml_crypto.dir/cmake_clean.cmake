file(REMOVE_RECURSE
  "CMakeFiles/switchml_crypto.dir/bigint.cpp.o"
  "CMakeFiles/switchml_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/switchml_crypto.dir/paillier.cpp.o"
  "CMakeFiles/switchml_crypto.dir/paillier.cpp.o.d"
  "libswitchml_crypto.a"
  "libswitchml_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
