
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/baseline_cluster.cpp" "src/collectives/CMakeFiles/switchml_collectives.dir/baseline_cluster.cpp.o" "gcc" "src/collectives/CMakeFiles/switchml_collectives.dir/baseline_cluster.cpp.o.d"
  "/root/repo/src/collectives/halving_doubling.cpp" "src/collectives/CMakeFiles/switchml_collectives.dir/halving_doubling.cpp.o" "gcc" "src/collectives/CMakeFiles/switchml_collectives.dir/halving_doubling.cpp.o.d"
  "/root/repo/src/collectives/ps.cpp" "src/collectives/CMakeFiles/switchml_collectives.dir/ps.cpp.o" "gcc" "src/collectives/CMakeFiles/switchml_collectives.dir/ps.cpp.o.d"
  "/root/repo/src/collectives/ring.cpp" "src/collectives/CMakeFiles/switchml_collectives.dir/ring.cpp.o" "gcc" "src/collectives/CMakeFiles/switchml_collectives.dir/ring.cpp.o.d"
  "/root/repo/src/collectives/streaming_ps.cpp" "src/collectives/CMakeFiles/switchml_collectives.dir/streaming_ps.cpp.o" "gcc" "src/collectives/CMakeFiles/switchml_collectives.dir/streaming_ps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/switchml_net.dir/DependInfo.cmake"
  "/root/repo/build/src/worker/CMakeFiles/switchml_worker.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/switchml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/switchml_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/switchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
