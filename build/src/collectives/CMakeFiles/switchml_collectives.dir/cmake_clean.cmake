file(REMOVE_RECURSE
  "CMakeFiles/switchml_collectives.dir/baseline_cluster.cpp.o"
  "CMakeFiles/switchml_collectives.dir/baseline_cluster.cpp.o.d"
  "CMakeFiles/switchml_collectives.dir/halving_doubling.cpp.o"
  "CMakeFiles/switchml_collectives.dir/halving_doubling.cpp.o.d"
  "CMakeFiles/switchml_collectives.dir/ps.cpp.o"
  "CMakeFiles/switchml_collectives.dir/ps.cpp.o.d"
  "CMakeFiles/switchml_collectives.dir/ring.cpp.o"
  "CMakeFiles/switchml_collectives.dir/ring.cpp.o.d"
  "CMakeFiles/switchml_collectives.dir/streaming_ps.cpp.o"
  "CMakeFiles/switchml_collectives.dir/streaming_ps.cpp.o.d"
  "libswitchml_collectives.a"
  "libswitchml_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
