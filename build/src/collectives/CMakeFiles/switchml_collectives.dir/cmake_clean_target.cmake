file(REMOVE_RECURSE
  "libswitchml_collectives.a"
)
