# Empty compiler generated dependencies file for switchml_collectives.
# This may be replaced when dependencies are built.
