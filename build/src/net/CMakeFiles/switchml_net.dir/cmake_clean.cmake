file(REMOVE_RECURSE
  "CMakeFiles/switchml_net.dir/l2switch.cpp.o"
  "CMakeFiles/switchml_net.dir/l2switch.cpp.o.d"
  "CMakeFiles/switchml_net.dir/link.cpp.o"
  "CMakeFiles/switchml_net.dir/link.cpp.o.d"
  "CMakeFiles/switchml_net.dir/nic.cpp.o"
  "CMakeFiles/switchml_net.dir/nic.cpp.o.d"
  "CMakeFiles/switchml_net.dir/packet.cpp.o"
  "CMakeFiles/switchml_net.dir/packet.cpp.o.d"
  "CMakeFiles/switchml_net.dir/reliable.cpp.o"
  "CMakeFiles/switchml_net.dir/reliable.cpp.o.d"
  "CMakeFiles/switchml_net.dir/trace.cpp.o"
  "CMakeFiles/switchml_net.dir/trace.cpp.o.d"
  "libswitchml_net.a"
  "libswitchml_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
