
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/l2switch.cpp" "src/net/CMakeFiles/switchml_net.dir/l2switch.cpp.o" "gcc" "src/net/CMakeFiles/switchml_net.dir/l2switch.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/switchml_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/switchml_net.dir/link.cpp.o.d"
  "/root/repo/src/net/nic.cpp" "src/net/CMakeFiles/switchml_net.dir/nic.cpp.o" "gcc" "src/net/CMakeFiles/switchml_net.dir/nic.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/switchml_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/switchml_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/reliable.cpp" "src/net/CMakeFiles/switchml_net.dir/reliable.cpp.o" "gcc" "src/net/CMakeFiles/switchml_net.dir/reliable.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/switchml_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/switchml_net.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/switchml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/switchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
