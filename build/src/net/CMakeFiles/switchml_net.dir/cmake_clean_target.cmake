file(REMOVE_RECURSE
  "libswitchml_net.a"
)
