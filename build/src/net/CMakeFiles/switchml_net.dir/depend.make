# Empty dependencies file for switchml_net.
# This may be replaced when dependencies are built.
