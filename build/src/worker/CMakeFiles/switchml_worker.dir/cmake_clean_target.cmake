file(REMOVE_RECURSE
  "libswitchml_worker.a"
)
