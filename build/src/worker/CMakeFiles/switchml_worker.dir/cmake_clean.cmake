file(REMOVE_RECURSE
  "CMakeFiles/switchml_worker.dir/worker.cpp.o"
  "CMakeFiles/switchml_worker.dir/worker.cpp.o.d"
  "libswitchml_worker.a"
  "libswitchml_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
