# Empty dependencies file for switchml_worker.
# This may be replaced when dependencies are built.
