# CMake generated Testfile for 
# Source directory: /root/repo/src/worker
# Build directory: /root/repo/build/src/worker
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
