file(REMOVE_RECURSE
  "CMakeFiles/switchml_core.dir/allreduce.cpp.o"
  "CMakeFiles/switchml_core.dir/allreduce.cpp.o.d"
  "CMakeFiles/switchml_core.dir/cluster.cpp.o"
  "CMakeFiles/switchml_core.dir/cluster.cpp.o.d"
  "CMakeFiles/switchml_core.dir/stream_manager.cpp.o"
  "CMakeFiles/switchml_core.dir/stream_manager.cpp.o.d"
  "CMakeFiles/switchml_core.dir/timing_stream.cpp.o"
  "CMakeFiles/switchml_core.dir/timing_stream.cpp.o.d"
  "libswitchml_core.a"
  "libswitchml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
