file(REMOVE_RECURSE
  "libswitchml_core.a"
)
