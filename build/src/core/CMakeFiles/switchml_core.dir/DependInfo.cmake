
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allreduce.cpp" "src/core/CMakeFiles/switchml_core.dir/allreduce.cpp.o" "gcc" "src/core/CMakeFiles/switchml_core.dir/allreduce.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/switchml_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/switchml_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/stream_manager.cpp" "src/core/CMakeFiles/switchml_core.dir/stream_manager.cpp.o" "gcc" "src/core/CMakeFiles/switchml_core.dir/stream_manager.cpp.o.d"
  "/root/repo/src/core/timing_stream.cpp" "src/core/CMakeFiles/switchml_core.dir/timing_stream.cpp.o" "gcc" "src/core/CMakeFiles/switchml_core.dir/timing_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/worker/CMakeFiles/switchml_worker.dir/DependInfo.cmake"
  "/root/repo/build/src/switchml_switch/CMakeFiles/switchml_switchprog.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/switchml_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/switchml_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/switchml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/switchml_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/switchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
