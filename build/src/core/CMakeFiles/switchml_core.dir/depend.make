# Empty dependencies file for switchml_core.
# This may be replaced when dependencies are built.
