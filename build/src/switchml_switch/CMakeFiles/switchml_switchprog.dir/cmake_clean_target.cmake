file(REMOVE_RECURSE
  "libswitchml_switchprog.a"
)
