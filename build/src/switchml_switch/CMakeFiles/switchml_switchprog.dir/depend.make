# Empty dependencies file for switchml_switchprog.
# This may be replaced when dependencies are built.
