file(REMOVE_RECURSE
  "CMakeFiles/switchml_switchprog.dir/aggregation_switch.cpp.o"
  "CMakeFiles/switchml_switchprog.dir/aggregation_switch.cpp.o.d"
  "libswitchml_switchprog.a"
  "libswitchml_switchprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_switchprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
