
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/switchml_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/switchml_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/switchml_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/switchml_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/ml/CMakeFiles/switchml_ml.dir/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/switchml_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/switchml_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/switchml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/switchml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
