# Empty dependencies file for switchml_ml.
# This may be replaced when dependencies are built.
