file(REMOVE_RECURSE
  "libswitchml_ml.a"
)
