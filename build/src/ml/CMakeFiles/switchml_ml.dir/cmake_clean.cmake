file(REMOVE_RECURSE
  "CMakeFiles/switchml_ml.dir/dataset.cpp.o"
  "CMakeFiles/switchml_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/switchml_ml.dir/mlp.cpp.o"
  "CMakeFiles/switchml_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/switchml_ml.dir/trainer.cpp.o"
  "CMakeFiles/switchml_ml.dir/trainer.cpp.o.d"
  "libswitchml_ml.a"
  "libswitchml_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
