file(REMOVE_RECURSE
  "CMakeFiles/switchml_common.dir/log.cpp.o"
  "CMakeFiles/switchml_common.dir/log.cpp.o.d"
  "CMakeFiles/switchml_common.dir/stats.cpp.o"
  "CMakeFiles/switchml_common.dir/stats.cpp.o.d"
  "CMakeFiles/switchml_common.dir/table.cpp.o"
  "CMakeFiles/switchml_common.dir/table.cpp.o.d"
  "libswitchml_common.a"
  "libswitchml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
