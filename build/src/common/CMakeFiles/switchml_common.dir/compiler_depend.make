# Empty compiler generated dependencies file for switchml_common.
# This may be replaced when dependencies are built.
