file(REMOVE_RECURSE
  "libswitchml_common.a"
)
