file(REMOVE_RECURSE
  "libswitchml_dataplane.a"
)
