file(REMOVE_RECURSE
  "CMakeFiles/switchml_dataplane.dir/pipeline.cpp.o"
  "CMakeFiles/switchml_dataplane.dir/pipeline.cpp.o.d"
  "libswitchml_dataplane.a"
  "libswitchml_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
