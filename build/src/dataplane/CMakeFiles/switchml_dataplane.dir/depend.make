# Empty dependencies file for switchml_dataplane.
# This may be replaced when dependencies are built.
