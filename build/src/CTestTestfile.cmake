# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("dataplane")
subdirs("quant")
subdirs("crypto")
subdirs("switchml_switch")
subdirs("worker")
subdirs("collectives")
subdirs("core")
subdirs("ml")
subdirs("perfmodel")
subdirs("framework")
